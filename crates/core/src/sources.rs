//! Resilient access to the corroboration sources.
//!
//! The inspect, pivot, and shortlist stages corroborate verdicts
//! against external sources: passive DNS, the CT index, as2org, and
//! geolocation. This module wraps each of those behind a
//! [`ResilientSource`]/[`SourceGuard`] that adds, per logical call:
//!
//! * a per-attempt **deadline** (virtual milliseconds),
//! * **bounded retries** of retryable failures with exponential
//!   backoff and deterministic, key-seeded jitter, and
//! * a per-source **circuit breaker** (closed → open → half-open)
//!   that fails fast once a source has failed `breaker_threshold`
//!   consecutive calls, re-probing after a cooldown.
//!
//! Time here is *simulated*: fault injectors ([`SourceFaults`]) answer
//! each attempt with a virtual latency, the guard accumulates it on a
//! virtual clock, and nothing ever sleeps. Without an injector every
//! call succeeds instantly, so a fault-free pipeline run is
//! byte-identical to one without this layer. Fault outcomes are keyed
//! by the query identity (a stable hash), never by global call order,
//! so degradation is reproducible regardless of how candidates are
//! chunked across workers (breaker state is per-worker-chunk; see
//! DESIGN.md §9 for the determinism contract).
//!
//! When a call exhausts its retry budget the caller must *degrade*:
//! mark the verdict `Degraded { missing_sources }` rather than guess.
//! Guard tallies land in the `source.<name>.*` metric namespace.

use crate::metrics::MetricsShard;
use retrodns_asdb::AsDatabase;
use retrodns_cert::CrtShIndex;
use retrodns_dns::PassiveDns;
use retrodns_types::{bytes_hash, CallFate, SourceError, SourceFaults};
use serde::{Deserialize, Serialize};

/// Canonical source name: passive DNS.
pub const SRC_PDNS: &str = "pdns";
/// Canonical source name: the CT (crt.sh-shaped) index.
pub const SRC_CT: &str = "ct";
/// Canonical source name: the as2org sibling-ASN table.
pub const SRC_AS2ORG: &str = "as2org";
/// Canonical source name: IP geolocation / ASN annotation.
pub const SRC_GEO: &str = "geo";

/// A corroboration backend the resilience layer can guard. The name is
/// the metric namespace (`source.<name>.*`) and the label recorded in
/// `missing_sources` on degraded verdicts; queries stay native — the
/// wrapper guards the *call*, not the query shape.
pub trait Source {
    /// Stable machine-readable source name.
    fn source_name(&self) -> &'static str;
}

impl Source for PassiveDns {
    fn source_name(&self) -> &'static str {
        SRC_PDNS
    }
}

impl Source for CrtShIndex {
    fn source_name(&self) -> &'static str {
        SRC_CT
    }
}

impl Source for AsDatabase {
    fn source_name(&self) -> &'static str {
        SRC_AS2ORG
    }
}

/// Retry/deadline/breaker policy, shared by every source.
///
/// All times are virtual milliseconds (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourcePolicy {
    /// Per-attempt deadline; an attempt slower than this counts as a
    /// timeout. Values below 1 are treated as 1.
    pub deadline_ms: u64,
    /// Retries after the first attempt (so `retries + 1` attempts per
    /// logical call, at most).
    pub retries: u32,
    /// Base backoff before retry `n` (doubled per retry, plus
    /// deterministic jitter in `0..backoff_base_ms`).
    pub backoff_base_ms: u64,
    /// Consecutive failed calls that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Virtual time an open breaker waits before letting a half-open
    /// probe call through.
    pub breaker_cooldown_ms: u64,
}

impl Default for SourcePolicy {
    fn default() -> SourcePolicy {
        SourcePolicy {
            deadline_ms: 1_000,
            retries: 2,
            backoff_base_ms: 50,
            breaker_threshold: 5,
            breaker_cooldown_ms: 30_000,
        }
    }
}

/// Circuit-breaker state for one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow to the backend.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Probing: one call is let through; success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding (0 closed, 1 half-open, 2 open).
    pub fn as_gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// Deterministic jitter: a splitmix64 finalizer over (key, attempt).
fn jitter_hash(key: u64, attempt: u32) -> u64 {
    let mut z = key
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable identity of a logical query, for keying fault outcomes and
/// jitter. Feed it the query's discriminating parts (domain bytes, an
/// IP's octets, ...); the result is platform- and run-stable.
pub fn query_key(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0;
    for part in parts {
        // Separator keeps ["ab","c"] distinct from ["a","bc"].
        h = h.wrapping_mul(131).wrapping_add(0x1F);
        h = h.wrapping_mul(131).wrapping_add(bytes_hash(part));
    }
    h
}

/// Per-source call tallies, mirrored into `source.<name>.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Attempts issued (including retries).
    pub attempts: u64,
    /// Retry attempts (attempts beyond the first of each call).
    pub retries: u64,
    /// Attempts that blew their deadline.
    pub deadline_exceeded: u64,
    /// Logical calls that failed past the retry budget (including
    /// breaker fast-fails): each one degrades whatever depended on it.
    pub exhausted: u64,
    /// Calls failed fast by an open breaker (subset of `exhausted`).
    pub fast_fail: u64,
    /// Closed/half-open → open transitions.
    pub breaker_opened: u64,
}

/// The retry/deadline/breaker state machine guarding one source within
/// one worker context.
///
/// Guards are cheap to build; the pipeline creates one per source per
/// worker chunk so that no lock is needed and the breaker's history is
/// deterministic for a given chunking.
pub struct SourceGuard<'a> {
    name: &'static str,
    policy: SourcePolicy,
    faults: Option<&'a dyn SourceFaults>,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_ms: u64,
    clock_ms: u64,
    stats: SourceStats,
}

impl<'a> SourceGuard<'a> {
    /// A guard for the source `name` under `policy`, with optional
    /// fault injection.
    pub fn new(
        name: &'static str,
        policy: SourcePolicy,
        faults: Option<&'a dyn SourceFaults>,
    ) -> SourceGuard<'a> {
        SourceGuard {
            name,
            policy,
            faults,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_ms: 0,
            clock_ms: 0,
            stats: SourceStats::default(),
        }
    }

    /// The source name this guard protects.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.state
    }

    /// Tallies so far.
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    /// The virtual clock (ms of simulated latency/backoff accumulated).
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Execute one logical call identified by `key`: retry retryable
    /// failures within the budget, honor the breaker, and only run `f`
    /// (the actual data access) once an attempt succeeds. `Err` means
    /// the source is unavailable for this query — the caller must
    /// degrade, never guess.
    pub fn call<T>(&mut self, key: u64, f: impl FnOnce() -> T) -> Result<T, SourceError> {
        if self.state == BreakerState::Open {
            if self.clock_ms >= self.open_until_ms {
                self.state = BreakerState::HalfOpen;
            } else {
                self.stats.fast_fail += 1;
                self.stats.exhausted += 1;
                return Err(SourceError::BreakerOpen);
            }
        }
        let deadline = self.policy.deadline_ms.max(1);
        let mut last = SourceError::Unavailable;
        for attempt in 0..=self.policy.retries {
            self.stats.attempts += 1;
            if attempt > 0 {
                self.stats.retries += 1;
                self.clock_ms += self.backoff_ms(key, attempt);
            }
            let fate = match self.faults {
                Some(fx) => fx.fate(self.name, key, attempt),
                None => CallFate::Ok { latency_ms: 0 },
            };
            let latency = fate.latency_ms();
            // An attempt never burns more virtual time than its deadline.
            self.clock_ms += latency.min(deadline);
            last = if latency >= deadline {
                self.stats.deadline_exceeded += 1;
                SourceError::Timeout
            } else {
                match fate {
                    CallFate::Ok { .. } => {
                        self.on_success();
                        return Ok(f());
                    }
                    CallFate::Partial { .. } => SourceError::PartialResponse,
                    CallFate::Fail { .. } => SourceError::Unavailable,
                }
            };
            if !last.is_retryable() {
                break;
            }
        }
        self.on_failure();
        self.stats.exhausted += 1;
        Err(last)
    }

    /// Exponential backoff before retry `attempt`, with deterministic
    /// key-seeded jitter so reports stay reproducible.
    fn backoff_ms(&self, key: u64, attempt: u32) -> u64 {
        let base = self.policy.backoff_base_ms.max(1);
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(16));
        exp + jitter_hash(key, attempt) % base
    }

    fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    fn on_failure(&mut self) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            // A half-open probe failing re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.policy.breaker_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until_ms = self.clock_ms + self.policy.breaker_cooldown_ms;
            self.stats.breaker_opened += 1;
        }
    }

    /// Mirror the tallies into `source.<name>.*` metrics. Zero-valued
    /// counters are skipped; the breaker-state gauge is recorded
    /// whenever the guard saw traffic.
    pub fn record(&self, shard: &mut MetricsShard) {
        let s = self.stats;
        for (metric, n) in [
            ("attempts", s.attempts),
            ("retries", s.retries),
            ("deadline_exceeded", s.deadline_exceeded),
            ("exhausted", s.exhausted),
            ("fast_fail", s.fast_fail),
            ("breaker_opened", s.breaker_opened),
        ] {
            if n > 0 {
                shard.count(&format!("source.{}.{metric}", self.name), n);
            }
        }
        if s.attempts > 0 || s.fast_fail > 0 {
            shard.gauge(
                &format!("source.{}.breaker_state", self.name),
                self.state.as_gauge(),
            );
        }
    }
}

/// A backend paired with its [`SourceGuard`]: the guarded handle the
/// detection stages actually query through.
pub struct ResilientSource<'a, S: Source + ?Sized> {
    inner: &'a S,
    guard: SourceGuard<'a>,
}

impl<'a, S: Source + ?Sized> ResilientSource<'a, S> {
    /// Wrap `inner` under `policy` with optional fault injection.
    pub fn new(
        inner: &'a S,
        policy: SourcePolicy,
        faults: Option<&'a dyn SourceFaults>,
    ) -> ResilientSource<'a, S> {
        ResilientSource {
            guard: SourceGuard::new(inner.source_name(), policy, faults),
            inner,
        }
    }

    /// Run the query `q` against the backend as one guarded logical
    /// call keyed by `key`. On `Err` the caller must degrade the
    /// dependent verdict.
    pub fn call<T>(&mut self, key: u64, q: impl FnOnce(&S) -> T) -> Result<T, SourceError> {
        let inner = self.inner;
        self.guard.call(key, || q(inner))
    }

    /// The underlying guard (stats, breaker state).
    pub fn guard(&self) -> &SourceGuard<'a> {
        &self.guard
    }

    /// The wrapped backend, for pure data reads after a guarded call
    /// for the same logical query succeeded.
    pub fn inner(&self) -> &'a S {
        self.inner
    }

    /// Mirror the guard tallies into metrics.
    pub fn record(&self, shard: &mut MetricsShard) {
        self.guard.record(shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Scripted injector: pops fates front-to-back, then succeeds.
    struct Script(RefCell<Vec<CallFate>>);

    impl Script {
        fn new(fates: Vec<CallFate>) -> Script {
            Script(RefCell::new(fates))
        }
    }

    // Tests are single-threaded; RefCell never crosses a thread here.
    unsafe impl Sync for Script {}

    impl SourceFaults for Script {
        fn fate(&self, _source: &str, _key: u64, _attempt: u32) -> CallFate {
            let mut fates = self.0.borrow_mut();
            if fates.is_empty() {
                CallFate::Ok { latency_ms: 0 }
            } else {
                fates.remove(0)
            }
        }
    }

    fn policy() -> SourcePolicy {
        SourcePolicy {
            deadline_ms: 100,
            retries: 2,
            backoff_base_ms: 10,
            breaker_threshold: 2,
            breaker_cooldown_ms: 1_000,
            // no ..Default: every field explicit so the tests read alone
        }
    }

    #[test]
    fn fault_free_calls_succeed_without_clock_movement() {
        let mut g = SourceGuard::new(SRC_PDNS, policy(), None);
        for key in 0..10 {
            assert_eq!(g.call(key, || 7), Ok(7));
        }
        let s = g.stats();
        assert_eq!(s.attempts, 10);
        assert_eq!(s.retries, 0);
        assert_eq!(s.exhausted, 0);
        assert_eq!(g.clock_ms(), 0);
        assert_eq!(g.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let script = Script::new(vec![
            CallFate::Fail { latency_ms: 5 },
            CallFate::Fail { latency_ms: 5 },
            CallFate::Ok { latency_ms: 5 },
        ]);
        let mut g = SourceGuard::new(SRC_PDNS, policy(), Some(&script));
        assert_eq!(g.call(1, || "answer"), Ok("answer"));
        let s = g.stats();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.exhausted, 0);
        // 3 attempts × 5 ms latency plus two backoffs ≥ base each.
        assert!(g.clock_ms() >= 15 + 2 * 10);
    }

    #[test]
    fn slow_answers_count_as_deadline_exceeded() {
        let script = Script::new(vec![CallFate::Ok { latency_ms: 100 }]);
        let mut g = SourceGuard::new(SRC_CT, policy(), Some(&script));
        // First attempt times out (latency == deadline), retry succeeds.
        assert_eq!(g.call(1, || 1), Ok(1));
        assert_eq!(g.stats().deadline_exceeded, 1);
        assert_eq!(g.stats().retries, 1);
    }

    #[test]
    fn partial_response_is_terminal() {
        let script = Script::new(vec![CallFate::Partial { latency_ms: 1 }]);
        let mut g = SourceGuard::new(SRC_CT, policy(), Some(&script));
        assert_eq!(g.call(1, || 1), Err(SourceError::PartialResponse));
        // No retry was spent on the terminal error.
        assert_eq!(g.stats().attempts, 1);
        assert_eq!(g.stats().exhausted, 1);
    }

    #[test]
    fn breaker_opens_half_opens_and_closes() {
        // Every attempt fails until the script drains: 2 exhausted calls
        // (threshold) trip the breaker.
        let fails = vec![CallFate::Fail { latency_ms: 1 }; 6];
        let script = Script::new(fails);
        let mut g = SourceGuard::new(SRC_AS2ORG, policy(), Some(&script));
        assert!(g.call(1, || ()).is_err());
        assert!(g.call(2, || ()).is_err());
        assert_eq!(g.breaker_state(), BreakerState::Open);
        assert_eq!(g.stats().breaker_opened, 1);

        // While open and before cooldown: fast fail, backend untouched.
        assert_eq!(g.call(3, || ()), Err(SourceError::BreakerOpen));
        assert_eq!(g.stats().fast_fail, 1);

        // Advance virtual time past the cooldown by burning failed calls?
        // No — the clock only moves on real attempts, so jump it by
        // making the cooldown tiny instead.
        // Two exhausted calls of 3 attempts each (retries = 2).
        let script = Script::new(vec![CallFate::Fail { latency_ms: 1 }; 6]);
        let mut g = SourceGuard::new(
            SRC_AS2ORG,
            SourcePolicy {
                breaker_cooldown_ms: 0,
                ..policy()
            },
            Some(&script),
        );
        assert!(g.call(1, || ()).is_err());
        assert!(g.call(2, || ()).is_err());
        assert_eq!(g.breaker_state(), BreakerState::Open);
        // Cooldown 0: next call half-opens and (script drained) succeeds,
        // closing the breaker.
        assert_eq!(g.call(3, || 9), Ok(9));
        assert_eq!(g.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let script = Script::new(vec![CallFate::Partial { latency_ms: 1 }; 3]);
        let mut g = SourceGuard::new(
            SRC_PDNS,
            SourcePolicy {
                breaker_threshold: 1,
                breaker_cooldown_ms: 0,
                ..policy()
            },
            Some(&script),
        );
        assert!(g.call(1, || ()).is_err()); // trips (threshold 1)
        assert_eq!(g.breaker_state(), BreakerState::Open);
        assert!(g.call(2, || ()).is_err()); // half-open probe fails
        assert_eq!(g.breaker_state(), BreakerState::Open);
        assert_eq!(g.stats().breaker_opened, 2);
    }

    #[test]
    fn jitter_is_deterministic_per_key() {
        let run = |key: u64| {
            let script = Script::new(vec![CallFate::Fail { latency_ms: 2 }; 2]);
            let mut g = SourceGuard::new(SRC_PDNS, policy(), Some(&script));
            let _ = g.call(key, || ());
            g.clock_ms()
        };
        assert_eq!(run(7), run(7));
        // Different keys draw different jitter streams. Check the hash
        // directly: the *sums* of two backoffs taken mod the base can
        // collide for a fixed pair of keys.
        assert_ne!(jitter_hash(7, 1), jitter_hash(8, 1));
        assert_ne!(jitter_hash(7, 1), jitter_hash(7, 2));
    }

    #[test]
    fn query_key_discriminates_parts() {
        assert_eq!(query_key(&[b"a.com"]), query_key(&[b"a.com"]));
        assert_ne!(query_key(&[b"ab", b"c"]), query_key(&[b"a", b"bc"]));
        assert_ne!(query_key(&[b"a.com"]), query_key(&[b"a.org"]));
    }

    #[test]
    fn record_emits_source_namespace() {
        let script = Script::new(vec![CallFate::Fail { latency_ms: 1 }; 3]);
        let mut g = SourceGuard::new(SRC_PDNS, policy(), Some(&script));
        let _ = g.call(1, || ());
        let mut shard = MetricsShard::default();
        g.record(&mut shard);
        assert_eq!(shard.counters.get("source.pdns.attempts"), Some(&3));
        assert_eq!(shard.counters.get("source.pdns.retries"), Some(&2));
        assert_eq!(shard.counters.get("source.pdns.exhausted"), Some(&1));
        assert!(shard.gauges.contains_key("source.pdns.breaker_state"));
        // Zero-valued counters stay absent.
        assert!(!shard.counters.contains_key("source.pdns.fast_fail"));
    }
}
