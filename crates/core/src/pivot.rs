//! Stage 5: pivot analysis (§4.5).
//!
//! Confirmed hijacks reveal attacker infrastructure — server IPs and rogue
//! nameserver hostnames. Passive DNS can then answer the reverse
//! questions: *which other domains resolved to those IPs* (P-IP) and
//! *which other domains were delegated to those nameservers* (P-NS).
//! This finds victims deployment maps cannot: domains with no stable
//! observable TLS infrastructure (fiu.gov.kg), domains with no TLS at all
//! (embassy.ly), and maps too cluttered to classify.
//!
//! The pivot runs to fixpoint: every newly confirmed victim contributes
//! its own attacker IPs/nameservers to the frontier.

use crate::inspect::{DegradedVerdict, DetectedHijack, DetectionType};
use crate::sources::{query_key, ResilientSource, SourcePolicy};
use retrodns_cert::CrtShIndex;
use retrodns_dns::{PassiveDns, RecordType};
use retrodns_types::{Day, DomainName, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// Pivot thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PivotConfig {
    /// Maximum pDNS visibility (days) for a resolution/delegation toward
    /// attacker infrastructure to look like a hijack rather than a
    /// domain legitimately hosted there.
    pub short_change_max_days: u32,
    /// Window (days) around the pDNS sighting to search CT for the
    /// malicious certificate.
    pub ct_window_days: u32,
    /// Safety valve: an IP that pDNS says hundreds of domains resolve to
    /// is shared hosting, not attacker infrastructure — skip it.
    pub max_domains_per_ip: usize,
}

impl Default for PivotConfig {
    fn default() -> Self {
        PivotConfig {
            short_change_max_days: 45,
            ct_window_days: 21,
            max_domains_per_ip: 25,
        }
    }
}

/// The pivot stage's full result, including degraded-mode accounting.
#[derive(Debug, Clone, Default)]
pub struct PivotOutcome {
    /// Newly discovered hijacks.
    pub found: Vec<DetectedHijack>,
    /// Pivot discoveries whose corroborating detail queries stayed
    /// unavailable: reported under the degraded tier, never upgraded to
    /// hijacked, and never used to extend the frontier.
    pub degraded: Vec<DegradedVerdict>,
    /// Frontier expansions (reverse pDNS lookups) skipped because the
    /// source was unavailable past its retry budget.
    pub degraded_lookups: usize,
}

/// Expand the confirmed-hijack set by pivoting on attacker infrastructure.
/// Returns only the newly discovered hijacks. Sources run unguarded (no
/// faults, no budget); the pipeline uses [`pivot_guarded`] instead.
pub fn pivot(
    confirmed: &[DetectedHijack],
    pdns: &PassiveDns,
    crtsh: &CrtShIndex,
    cfg: &PivotConfig,
) -> Vec<DetectedHijack> {
    let mut pdns = ResilientSource::new(pdns, SourcePolicy::default(), None);
    let mut crtsh = ResilientSource::new(crtsh, SourcePolicy::default(), None);
    pivot_guarded(confirmed, &mut pdns, &mut crtsh, cfg).found
}

/// [`pivot`] with both sources behind [`ResilientSource`] guards.
///
/// Two kinds of guarded calls exist here, with different degraded
/// behavior:
///
/// * **frontier expansion** (reverse pDNS lookup of an attacker IP or
///   rogue NS) — on exhaustion the expansion is skipped and counted in
///   [`PivotOutcome::degraded_lookups`]; nothing is guessed;
/// * **discovery detail** (the per-domain pDNS/CT corroboration of one
///   pivot hit) — on exhaustion the discovery is demoted to a
///   [`DegradedVerdict`] (stage `pivot`), remembered as known so it is
///   not re-litigated, and contributes nothing to the frontier.
pub fn pivot_guarded(
    confirmed: &[DetectedHijack],
    pdns: &mut ResilientSource<PassiveDns>,
    crtsh: &mut ResilientSource<CrtShIndex>,
    cfg: &PivotConfig,
) -> PivotOutcome {
    let mut out = PivotOutcome::default();
    let mut known: HashSet<DomainName> = confirmed.iter().map(|h| h.domain.clone()).collect();
    let mut found: Vec<DetectedHijack> = Vec::new();

    let mut ip_frontier: BTreeSet<Ipv4Addr> = confirmed
        .iter()
        .flat_map(|h| h.attacker_ips.iter().copied())
        .collect();
    let mut ns_frontier: BTreeSet<DomainName> = confirmed
        .iter()
        .flat_map(|h| h.attacker_ns.iter().cloned())
        .collect();
    let mut ips_done: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut ns_done: BTreeSet<DomainName> = BTreeSet::new();

    loop {
        let mut progressed = false;

        // --- P-NS: domains briefly delegated to rogue nameservers -------
        while let Some(ns) = pop_first(&mut ns_frontier) {
            if !ns_done.insert(ns.clone()) {
                continue;
            }
            progressed = true;
            let key = query_key(&[b"delegated-to", ns.as_str().as_bytes()]);
            let entries = match pdns.call(key, |p| p.domains_delegated_to(&ns)) {
                Ok(entries) => entries,
                Err(_) => {
                    out.degraded_lookups += 1;
                    continue;
                }
            };
            for entry in entries {
                if entry.visibility_days() > cfg.short_change_max_days {
                    continue; // long-lived: legitimately hosted there
                }
                let domain = entry.name.registered_domain();
                if known.contains(&domain) {
                    continue;
                }
                if let Err(missing) = corroborate(&domain, pdns, crtsh) {
                    out.degraded.push(DegradedVerdict {
                        domain: domain.clone(),
                        stage: "pivot".to_string(),
                        first_evidence: entry.first_seen,
                        missing_sources: missing,
                    });
                    known.insert(domain);
                    continue;
                }
                let hijack = build_pivot_hit(
                    &domain,
                    DetectionType::PivotNs,
                    entry.first_seen,
                    pdns.inner(),
                    crtsh.inner(),
                    cfg,
                    Some(ns.clone()),
                );
                extend_frontiers(&hijack, &mut ip_frontier, &mut ns_frontier);
                known.insert(domain);
                found.push(hijack);
            }
        }

        // --- P-IP: domains briefly resolving to attacker servers --------
        while let Some(ip) = pop_first(&mut ip_frontier) {
            if !ips_done.insert(ip) {
                continue;
            }
            progressed = true;
            let key = query_key(&[b"resolving-to", &ip.0.to_le_bytes()]);
            let entries = match pdns.call(key, |p| p.domains_resolving_to(ip)) {
                Ok(entries) => entries,
                Err(_) => {
                    out.degraded_lookups += 1;
                    continue;
                }
            };
            let distinct: BTreeSet<DomainName> =
                entries.iter().map(|e| e.name.registered_domain()).collect();
            if distinct.len() > cfg.max_domains_per_ip {
                continue; // shared hosting, not attacker infra
            }
            for entry in entries {
                if entry.visibility_days() > cfg.short_change_max_days {
                    continue;
                }
                let domain = entry.name.registered_domain();
                if known.contains(&domain) {
                    continue;
                }
                if let Err(missing) = corroborate(&domain, pdns, crtsh) {
                    out.degraded.push(DegradedVerdict {
                        domain: domain.clone(),
                        stage: "pivot".to_string(),
                        first_evidence: entry.first_seen,
                        missing_sources: missing,
                    });
                    known.insert(domain);
                    continue;
                }
                let mut hijack = build_pivot_hit(
                    &domain,
                    DetectionType::PivotIp,
                    entry.first_seen,
                    pdns.inner(),
                    crtsh.inner(),
                    cfg,
                    None,
                );
                if !hijack.attacker_ips.contains(&ip) {
                    hijack.attacker_ips.push(ip);
                }
                if hijack.sub.is_none() && entry.name != domain {
                    hijack.sub = Some(entry.name.clone());
                }
                extend_frontiers(&hijack, &mut ip_frontier, &mut ns_frontier);
                known.insert(domain);
                found.push(hijack);
            }
        }

        if !progressed && ip_frontier.is_empty() && ns_frontier.is_empty() {
            break;
        }
    }

    out.found = found;
    out
}

/// One guarded transport round per source for a pivot discovery's
/// detail queries. `Err` carries the canonical names of the sources
/// that stayed unavailable (in pdns-then-ct order).
fn corroborate(
    domain: &DomainName,
    pdns: &mut ResilientSource<PassiveDns>,
    crtsh: &mut ResilientSource<CrtShIndex>,
) -> Result<(), Vec<String>> {
    let key = query_key(&[b"pivot-detail", domain.as_str().as_bytes()]);
    let mut missing: Vec<String> = Vec::new();
    if pdns.call(key, |_| ()).is_err() {
        missing.push(pdns.guard().name().to_string());
    }
    if crtsh.call(key, |_| ()).is_err() {
        missing.push(crtsh.guard().name().to_string());
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

fn pop_first<T: Ord + Clone>(set: &mut BTreeSet<T>) -> Option<T> {
    let v = set.iter().next().cloned()?;
    set.remove(&v);
    Some(v)
}

fn extend_frontiers(
    hijack: &DetectedHijack,
    ip_frontier: &mut BTreeSet<Ipv4Addr>,
    ns_frontier: &mut BTreeSet<DomainName>,
) {
    ip_frontier.extend(hijack.attacker_ips.iter().copied());
    ns_frontier.extend(hijack.attacker_ns.iter().cloned());
}

/// Assemble the evidence record for one pivot discovery: re-query pDNS
/// for the domain's own short-lived changes and CT for a malicious
/// certificate near the sighting.
fn build_pivot_hit(
    domain: &DomainName,
    dtype: DetectionType,
    first_seen: Day,
    pdns: &PassiveDns,
    crtsh: &CrtShIndex,
    cfg: &PivotConfig,
    via_ns: Option<DomainName>,
) -> DetectedHijack {
    // Short-lived NS entries for the domain (implicates rogue NS).
    let attacker_ns: Vec<DomainName> = pdns
        .ns_history(domain)
        .into_iter()
        .filter(|e| e.visibility_days() <= cfg.short_change_max_days)
        .filter_map(|e| e.rdata.as_ns().cloned())
        .chain(via_ns)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    // Short-lived A entries under the domain in the window — these are
    // the redirected subdomain + attacker IP.
    let mut sub = None;
    let mut attacker_ips: Vec<Ipv4Addr> = Vec::new();
    for e in pdns.entries_under(domain) {
        if e.rtype != RecordType::A || e.visibility_days() > cfg.short_change_max_days {
            continue;
        }
        if !e.overlaps(
            first_seen.saturating_sub_days(cfg.ct_window_days),
            first_seen + cfg.ct_window_days,
        ) {
            continue;
        }
        if let Some(ip) = e.rdata.as_a() {
            if !attacker_ips.contains(&ip) {
                attacker_ips.push(ip);
            }
            if sub.is_none() && e.name != *domain && e.name.is_sensitive() {
                sub = Some(e.name.clone());
            }
        }
    }

    // CT: a certificate for a sensitive name under the domain issued near
    // the sighting.
    let window =
        first_seen.saturating_sub_days(cfg.ct_window_days)..=(first_seen + cfg.ct_window_days);
    let cert = crtsh
        .search_registered_in(domain, window)
        .into_iter()
        .filter(|r| crtsh.introduces_new_key(domain, r))
        .find(|r| r.names.iter().any(|n| n.is_sensitive()));
    let (malicious_cert, ct_sub) = match cert {
        Some(r) => (
            Some(r.id),
            r.names.iter().find(|n| n.is_sensitive()).cloned(),
        ),
        None => (None, None),
    };

    DetectedHijack {
        domain: domain.clone(),
        dtype,
        sub: sub.or(ct_sub),
        first_evidence: first_seen,
        pdns_corroborated: true,
        ct_corroborated: malicious_cert.is_some(),
        dnssec_corroborated: false,
        malicious_cert,
        attacker_ips,
        attacker_asn: None,
        attacker_cc: None,
        attacker_ns,
        victim_asns: Vec::new(),
        victim_ccs: Vec::new(),
        geo_implausible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrodns_cert::authority::CaId;
    use retrodns_cert::{CertId, Certificate, CtLog, KeyId};
    use retrodns_dns::RecordData;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn seed_hijack() -> DetectedHijack {
        DetectedHijack {
            domain: d("mfa.gov.kg"),
            dtype: DetectionType::T1,
            sub: Some(d("mail.mfa.gov.kg")),
            first_evidence: Day(100),
            pdns_corroborated: true,
            ct_corroborated: true,
            dnssec_corroborated: false,
            malicious_cert: Some(CertId(666)),
            attacker_ips: vec![ip("94.103.91.159")],
            attacker_asn: None,
            attacker_cc: None,
            attacker_ns: vec![d("ns1.kg-infocom.ru")],
            victim_asns: vec![],
            victim_ccs: vec![],
            geo_implausible: false,
        }
    }

    /// pDNS where a second victim (fiu.gov.kg) was briefly delegated to
    /// the same rogue NS and its mail resolved to a sibling attacker IP.
    fn pdns() -> PassiveDns {
        let mut p = PassiveDns::new();
        p.insert_aggregate(
            &d("fiu.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(110),
            Day(111),
            2,
        );
        p.insert_aggregate(
            &d("fiu.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(0),
            Day(300),
            80,
        );
        p.insert_aggregate(
            &d("mail.fiu.gov.kg"),
            RecordData::A(ip("178.20.41.140")),
            Day(110),
            Day(110),
            1,
        );
        // A long-lived legitimate customer of the same VPS /24 must NOT be
        // flagged: resolves to the attacker IP but for months.
        p.insert_aggregate(
            &d("legit-tenant.com"),
            RecordData::A(ip("94.103.91.159")),
            Day(200),
            Day(400),
            40,
        );
        p
    }

    fn crtsh() -> CrtShIndex {
        let mut log = CtLog::new();
        log.submit(
            Certificate::new(
                CertId(777),
                vec![d("mail.fiu.gov.kg")],
                CaId(1),
                Day(109),
                90,
                KeyId(9),
            ),
            Day(109),
        );
        CrtShIndex::build(&log)
    }

    #[test]
    fn pivot_by_ns_finds_no_infra_victim() {
        let found = pivot(&[seed_hijack()], &pdns(), &crtsh(), &PivotConfig::default());
        let fiu = found
            .iter()
            .find(|h| h.domain == d("fiu.gov.kg"))
            .expect("fiu found");
        assert_eq!(fiu.dtype, DetectionType::PivotNs);
        assert!(fiu.ct_corroborated, "CT cert for mail.fiu.gov.kg found");
        assert_eq!(fiu.malicious_cert, Some(CertId(777)));
        assert_eq!(fiu.sub, Some(d("mail.fiu.gov.kg")));
        assert!(fiu.attacker_ips.contains(&ip("178.20.41.140")));
    }

    #[test]
    fn long_lived_tenant_not_flagged() {
        let found = pivot(&[seed_hijack()], &pdns(), &crtsh(), &PivotConfig::default());
        assert!(!found.iter().any(|h| h.domain == d("legit-tenant.com")));
    }

    #[test]
    fn known_domains_not_rediscovered() {
        let found = pivot(&[seed_hijack()], &pdns(), &crtsh(), &PivotConfig::default());
        assert!(!found.iter().any(|h| h.domain == d("mfa.gov.kg")));
        // And fixpoint terminates with exactly one discovery.
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn shared_hosting_ip_is_skipped() {
        let mut p = pdns();
        // 30 domains briefly resolving to the attacker IP: shared hosting.
        for i in 0..30 {
            p.insert_aggregate(
                &d(&format!("tenant{i}.com")),
                RecordData::A(ip("94.103.91.159")),
                Day(50),
                Day(52),
                1,
            );
        }
        let found = pivot(&[seed_hijack()], &p, &crtsh(), &PivotConfig::default());
        assert!(
            !found
                .iter()
                .any(|h| h.domain.as_str().starts_with("tenant")),
            "shared-hosting tenants must not be flagged"
        );
        // The NS pivot still finds fiu.
        assert!(found.iter().any(|h| h.domain == d("fiu.gov.kg")));
    }

    #[test]
    fn pivot_chains_through_new_evidence() {
        let mut p = pdns();
        // fiu's attacker IP also briefly served a third victim.
        p.insert_aggregate(
            &d("mail.infocom.kg"),
            RecordData::A(ip("178.20.41.140")),
            Day(130),
            Day(131),
            1,
        );
        let found = pivot(&[seed_hijack()], &p, &crtsh(), &PivotConfig::default());
        assert!(
            found.iter().any(|h| h.domain == d("infocom.kg")),
            "{found:?}"
        );
    }
}
