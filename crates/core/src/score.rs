//! Scoring detection output against ground truth.
//!
//! The paper had no ground truth ("absent ground truth, we have no way to
//! judge the comprehensiveness of our results", §7.1); the simulator does.
//! This module computes precision/recall/F1 for any detected-vs-truth
//! domain set pair, used by the Table 2/3 experiments and the baseline
//! comparison.

use retrodns_types::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Confusion counts plus derived rates for one detection task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Score {
    /// Detected and true.
    pub true_positives: usize,
    /// Detected but not true.
    pub false_positives: usize,
    /// True but not detected.
    pub false_negatives: usize,
}

impl Score {
    /// Fraction of detections that are correct (1.0 when nothing was
    /// detected — no claims, no wrong claims).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Fraction of truth that was detected (1.0 for empty truth).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a detected set against a truth set (both deduplicated).
pub fn score_detection(detected: &[DomainName], truth: &[DomainName]) -> Score {
    let detected: BTreeSet<&DomainName> = detected.iter().collect();
    let truth: BTreeSet<&DomainName> = truth.iter().collect();
    Score {
        true_positives: detected.intersection(&truth).count(),
        false_positives: detected.difference(&truth).count(),
        false_negatives: truth.difference(&detected).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn perfect_detection() {
        let truth = vec![d("a.com"), d("b.com")];
        let s = score_detection(&truth, &truth);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn partial_detection() {
        let detected = vec![d("a.com"), d("x.com")];
        let truth = vec![d("a.com"), d("b.com")];
        let s = score_detection(&detected, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert!((s.precision() - 0.5).abs() < 1e-12);
        assert!((s.recall() - 0.5).abs() < 1e-12);
        assert!((s.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let s = score_detection(&[], &[]);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        let s = score_detection(&[], &[d("a.com")]);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.f1(), 0.0);
        let s = score_detection(&[d("a.com")], &[]);
        assert_eq!(s.precision(), 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let detected = vec![d("a.com"), d("a.com")];
        let truth = vec![d("a.com")];
        let s = score_detection(&detected, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
    }
}
