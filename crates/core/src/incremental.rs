//! Incremental week-at-a-time ingestion (§7.1 direction).
//!
//! The batch pipeline re-consumes the entire scan history on every run;
//! this module ingests one new scan batch (typically a week) at a time
//! and keeps the deployment maps, classifications, shortlist, and report
//! current in O(changes) rather than O(history):
//!
//! * **Quarantine** validates only the new batch; rejection reasons are
//!   per-record, so per-week histograms accumulate to the batch
//!   histogram exactly.
//! * **Map build** goes through [`MapBuilder::append_scan`]: only maps
//!   whose observation set changed are touched, and the merge is
//!   provably identical to relinking the full history under the stream
//!   discipline (appended dates strictly exceed everything ingested).
//! * **Classify** re-runs only on the dirty maps reported by the append.
//! * **Shortlist/inspect** re-run over the updated state (they are
//!   O(maps), a small fraction of O(observations) — the repeat-period
//!   and T1* checks are inherently cross-week, so their inputs cannot
//!   be windowed without changing verdicts).
//! * The resulting [`Report`] is byte-identical (as JSON) to a batch
//!   [`Pipeline::run`] over the concatenated history on fault-free
//!   inputs, at any worker count — `tests/streaming_equivalence.rs`
//!   pins this with golden tests and proptests.
//!
//! Each ingested week yields a [`WeekDelta`] — the verdict changes the
//! week introduced, the feed `core::reactive` and a future serve layer
//! consume. Deltas compose: replaying them over the week-0 report
//! reconstructs the final report exactly.
//!
//! Persistence reuses the checkpoint/manifest layer: the kept-row
//! observation log is saved through the content-addressed store
//! manifest (only changed tail chunks rewrite, see
//! [`ObservationStore::append`]) and the analyzer state is one extra
//! checkpoint stage whose inputs-fingerprint *is* the log's, so a
//! killed analyzer resumes mid-stream if and only if the state on disk
//! provably matches the logged stream and configuration.

use crate::checkpoint::{config_fingerprint, CheckpointStore, Fingerprint};
use crate::classify::{classify, Pattern};
use crate::inspect::{DegradedVerdict, DetectedHijack, DetectedTarget};
use crate::map::{DeploymentMap, MapBuilder};
use crate::metrics::MetricsRegistry;
use crate::observability::PipelineTimings;
use crate::pipeline::{
    apply_shortlist_funnel, funnel_population, quarantine, AnalystInputs, FunnelStats, Pipeline,
    PipelineConfig, Report,
};
use crate::shortlist::shortlist_guarded;
use crate::sources::ResilientSource;
use retrodns_scan::DomainObservation;
use retrodns_store::{DictCodes, ObservationStore, StoreBuilder};
use retrodns_types::{Day, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Checkpoint stage name for the analyzer state (rides alongside the
/// batch pipeline's `maps`/`classify`/`shortlist`/`inspect` stages).
pub const INCREMENTAL_STAGE: &str = "incremental";

/// The verdict changes one ingested week introduced, relative to the
/// report before it. Keyed by domain (reports hold at most one hijack
/// and one target verdict per domain); [`apply`](WeekDelta::apply)
/// replays a delta over the prior report to reconstruct the next one
/// exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeekDelta {
    /// Zero-based index of the ingested batch in the stream.
    pub week: u32,
    /// Latest scan date the batch carried (`Day(0)` for an empty batch).
    pub date: Day,
    /// Hijack verdicts that appeared or changed this week.
    pub hijacked_upserts: Vec<DetectedHijack>,
    /// Domains whose hijack verdict disappeared this week.
    pub hijacked_removed: Vec<DomainName>,
    /// Target verdicts that appeared or changed this week.
    pub targeted_upserts: Vec<DetectedTarget>,
    /// Domains whose target verdict disappeared this week (including
    /// promotions to hijacked).
    pub targeted_removed: Vec<DomainName>,
    /// Full replacement for [`Report::degraded`] when it changed, else
    /// `None`. Degraded verdicts are not unique per domain, so they
    /// cannot be keyed like the verdict lists; fault-free streams never
    /// produce any, so the replacement is almost always `None` or tiny.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub degraded: Option<Vec<DegradedVerdict>>,
    /// The funnel after this week (population counters move every week,
    /// so the funnel is carried wholesale rather than diffed).
    pub funnel: FunnelStats,
}

impl WeekDelta {
    /// Diff two consecutive reports into the delta that turns `old`
    /// into `new`.
    pub fn between(week: u32, date: Day, old: &Report, new: &Report) -> WeekDelta {
        fn diff<T: Clone + PartialEq>(
            old: &[T],
            new: &[T],
            domain: impl Fn(&T) -> &DomainName,
        ) -> (Vec<T>, Vec<DomainName>) {
            let old_by: BTreeMap<&DomainName, &T> = old.iter().map(|v| (domain(v), v)).collect();
            let new_by: BTreeMap<&DomainName, &T> = new.iter().map(|v| (domain(v), v)).collect();
            let upserts = new
                .iter()
                .filter(|v| old_by.get(domain(v)) != Some(v))
                .cloned()
                .collect();
            let removed = old
                .iter()
                .map(domain)
                .filter(|d| !new_by.contains_key(*d))
                .cloned()
                .collect();
            (upserts, removed)
        }
        let (hijacked_upserts, hijacked_removed) =
            diff(&old.hijacked, &new.hijacked, |h: &DetectedHijack| &h.domain);
        let (targeted_upserts, targeted_removed) =
            diff(&old.targeted, &new.targeted, |t: &DetectedTarget| &t.domain);
        WeekDelta {
            week,
            date,
            hijacked_upserts,
            hijacked_removed,
            targeted_upserts,
            targeted_removed,
            degraded: (old.degraded != new.degraded).then(|| new.degraded.clone()),
            funnel: new.funnel.clone(),
        }
    }

    /// Replay this delta over `report` (the report the delta was diffed
    /// against), producing the next week's report in place. Verdicts are
    /// rebuilt through a domain-keyed `BTreeMap`, which is exactly the
    /// ordering the pipeline's dedup stage produces — so a replayed
    /// report serializes byte-identically to the analyzed one.
    pub fn apply(&self, report: &mut Report) {
        fn patch<T: Clone>(
            into: &mut Vec<T>,
            upserts: &[T],
            removed: &[DomainName],
            domain: impl Fn(&T) -> DomainName,
        ) {
            let mut by: BTreeMap<DomainName, T> = into.drain(..).map(|v| (domain(&v), v)).collect();
            for d in removed {
                by.remove(d);
            }
            for v in upserts {
                by.insert(domain(v), v.clone());
            }
            *into = by.into_values().collect();
        }
        patch(
            &mut report.hijacked,
            &self.hijacked_upserts,
            &self.hijacked_removed,
            |h| h.domain.clone(),
        );
        patch(
            &mut report.targeted,
            &self.targeted_upserts,
            &self.targeted_removed,
            |t| t.domain.clone(),
        );
        if let Some(d) = &self.degraded {
            report.degraded = d.clone();
        }
        report.funnel = self.funnel.clone();
    }

    /// Did this week change any verdict (as opposed to only moving
    /// population counters)?
    pub fn has_verdict_changes(&self) -> bool {
        !self.hijacked_upserts.is_empty()
            || !self.hijacked_removed.is_empty()
            || !self.targeted_upserts.is_empty()
            || !self.targeted_removed.is_empty()
            || self.degraded.is_some()
    }
}

/// Serialized analyzer state (everything except the observation log,
/// which persists through the content-addressed store manifest).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IncrementalState {
    maps: Vec<DeploymentMap>,
    patterns: Vec<Pattern>,
    quarantined: BTreeMap<String, usize>,
    weeks: u32,
    last_date: Option<Day>,
    report: Report,
}

/// Streaming analyzer: feed it one scan batch at a time and it keeps a
/// [`Report`] current that is byte-identical to batch-analyzing the
/// concatenated history. See the module docs for the dataflow and
/// `DESIGN.md` §11 for the dirty-set propagation argument.
#[derive(Debug, Clone)]
pub struct IncrementalAnalyzer {
    pipeline: Pipeline,
    builder: MapBuilder,
    maps: Vec<DeploymentMap>,
    patterns: Vec<Pattern>,
    quarantined: BTreeMap<String, usize>,
    weeks: u32,
    last_date: Option<Day>,
    report: Report,
    log: ObservationStore,
    /// Interning tables mirroring `log`'s dictionaries, carried across
    /// appends so the weekly write stays O(batch), not O(dictionary).
    log_codes: DictCodes,
}

impl IncrementalAnalyzer {
    /// A fresh analyzer (no weeks ingested) for `config`.
    pub fn new(config: PipelineConfig) -> IncrementalAnalyzer {
        let mut builder = MapBuilder::new(config.window.clone());
        builder.link_gap_scans = config.link_gap_scans;
        IncrementalAnalyzer {
            pipeline: Pipeline::new(config),
            builder,
            maps: Vec::new(),
            patterns: Vec::new(),
            quarantined: BTreeMap::new(),
            weeks: 0,
            last_date: None,
            report: Report::default(),
            log: StoreBuilder::new().finish(),
            log_codes: DictCodes::default(),
        }
    }

    /// The analyzer's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.pipeline.config
    }

    /// The current report (after all ingested weeks).
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Number of batches ingested so far.
    pub fn weeks(&self) -> u32 {
        self.weeks
    }

    /// Latest scan date ingested, if any.
    pub fn last_date(&self) -> Option<Day> {
        self.last_date
    }

    /// Ingest one scan batch. Every observation date must be strictly
    /// greater than all previously ingested dates (the stream
    /// discipline [`MapBuilder::append_scan`] requires); batches
    /// arriving in scan order — the natural feed — satisfy this.
    ///
    /// `inputs` supplies the corroboration sources (as-db, certificates,
    /// pDNS, CT, DNSSEC) — its `observations` field is ignored; the
    /// batch itself is the input. Returns the [`WeekDelta`] of verdict
    /// changes the batch introduced.
    pub fn ingest_week(&mut self, week: &[DomainObservation], inputs: &AnalystInputs) -> WeekDelta {
        self.ingest_week_metered(week, inputs, &mut MetricsRegistry::new())
    }

    /// [`ingest_week`](Self::ingest_week) recording per-ingest metrics
    /// (classification counts, T1*/pivot counters, source guard
    /// tallies) into `metrics`.
    pub fn ingest_week_metered(
        &mut self,
        week: &[DomainObservation],
        inputs: &AnalystInputs,
        metrics: &mut MetricsRegistry,
    ) -> WeekDelta {
        let date = week.iter().map(|o| o.date).max().unwrap_or(Day(0));
        let cfg = &self.pipeline.config;

        // Stage 0 over the batch only. Reasons are per-record, so the
        // accumulated histogram equals the batch histogram; duplicates
        // cannot span weeks (a full-record repeat implies an equal scan
        // date, which the stream discipline forbids across batches).
        let (kept, rejected) = quarantine(week, &cfg.window, inputs.certs);
        for (reason, n) in rejected {
            *self.quarantined.entry(reason).or_insert(0) += n;
        }
        debug_assert!(
            self.last_date
                .is_none_or(|last| kept.iter().all(|o| o.date > last)),
            "stream discipline violated: batch dates must exceed all ingested dates"
        );
        self.log
            .append_with_codes(&kept, &mut self.log_codes)
            .expect("quarantine-kept dates fit the log epoch range");

        // Stage 1 in O(batch): merge the batch into the existing maps
        // and collect the dirty set.
        let outcome = self.builder.append_scan(&mut self.maps, &kept);

        // Stage 2 over the dirty set only. Inserted indices arrive
        // ascending and post-merge, so in-order insertion keeps
        // `patterns` parallel to `maps` throughout.
        for &i in &outcome.inserted {
            self.patterns
                .insert(i, classify(&self.maps[i], &cfg.classify));
        }
        for &i in &outcome.updated {
            self.patterns[i] = classify(&self.maps[i], &cfg.classify);
        }

        // Stages 3–5 over the full state: these are O(maps) — the
        // repeat-period shortlist checks and the T1* confirmed-IP pass
        // are cross-week by construction, so their inputs cannot shrink
        // without changing verdicts.
        let mut funnel = funnel_population(&self.maps, &self.patterns, self.quarantined.clone());
        let mut as2org = ResilientSource::new(inputs.asdb, cfg.sources, inputs.source_faults);
        let shortlisted = shortlist_guarded(
            &self.maps,
            &self.patterns,
            &mut as2org,
            inputs.certs,
            &cfg.shortlist,
        );
        apply_shortlist_funnel(&mut funnel, &shortlisted);
        let inspected = self
            .pipeline
            .inspect_candidates(&shortlisted.candidates, inputs);
        let mut timings = PipelineTimings::default();
        let report = self
            .pipeline
            .finish_report(inputs, funnel, inspected, metrics, &mut timings);

        let delta = WeekDelta::between(self.weeks, date, &self.report, &report);
        self.report = report;
        self.weeks += 1;
        if !kept.is_empty() {
            self.last_date = Some(self.last_date.map_or(date, |d| d.max(date)));
        }
        delta
    }

    /// Persist the analyzer into `store`: the kept-row observation log
    /// through the content-addressed manifest (unchanged chunks are
    /// skipped — the weekly delta writes O(batch) bytes) and the
    /// analyzer state as the [`INCREMENTAL_STAGE`] checkpoint, bound to
    /// the configuration and the log's fingerprint.
    pub fn checkpoint(&self, store: &CheckpointStore) -> std::io::Result<()> {
        store.save_observations(&self.log)?;
        let fp = Fingerprint {
            config: config_fingerprint(&self.pipeline.config),
            inputs: self.log.fingerprint(),
        };
        let state = IncrementalState {
            maps: self.maps.clone(),
            patterns: self.patterns.clone(),
            quarantined: self.quarantined.clone(),
            weeks: self.weeks,
            last_date: self.last_date,
            report: self.report.clone(),
        };
        store.save(INCREMENTAL_STAGE, &fp, &state)
    }

    /// Resume a previously checkpointed analyzer from `store`. Returns
    /// `None` when there is nothing valid to resume: no log, a damaged
    /// log (content hashes fail), or a state checkpoint that does not
    /// match this `config` and the logged stream — callers then start
    /// from [`new`](Self::new) and re-ingest.
    pub fn resume(config: PipelineConfig, store: &CheckpointStore) -> Option<IncrementalAnalyzer> {
        let log = store.load_observations()?;
        let fp = Fingerprint {
            config: config_fingerprint(&config),
            inputs: log.fingerprint(),
        };
        let state: IncrementalState = store.load(INCREMENTAL_STAGE, &fp).ok()?;
        let mut analyzer = IncrementalAnalyzer::new(config);
        analyzer.maps = state.maps;
        analyzer.patterns = state.patterns;
        analyzer.quarantined = state.quarantined;
        analyzer.weeks = state.weeks;
        analyzer.last_date = state.last_date;
        analyzer.report = state.report;
        analyzer.log_codes = DictCodes::of(&log);
        analyzer.log = log;
        Some(analyzer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_week_yields_empty_delta() {
        let delta = WeekDelta::between(0, Day(0), &Report::default(), &Report::default());
        assert!(!delta.has_verdict_changes());
        let mut r = Report::default();
        delta.apply(&mut r);
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&Report::default()).unwrap()
        );
    }

    #[test]
    fn delta_upsert_and_remove_round_trip() {
        let hij = |d: &str, day: u32| DetectedHijack {
            domain: d.parse().unwrap(),
            dtype: crate::inspect::DetectionType::T1,
            sub: None,
            first_evidence: Day(day),
            pdns_corroborated: true,
            ct_corroborated: false,
            dnssec_corroborated: false,
            malicious_cert: None,
            attacker_ips: vec![],
            attacker_asn: None,
            attacker_cc: None,
            attacker_ns: vec![],
            victim_asns: vec![],
            victim_ccs: vec![],
            geo_implausible: false,
        };
        let old = Report {
            hijacked: vec![hij("a.com", 1), hij("b.com", 2)],
            ..Report::default()
        };
        let new = Report {
            hijacked: vec![hij("b.com", 2), hij("c.com", 3)],
            ..Report::default()
        };
        let delta = WeekDelta::between(1, Day(7), &old, &new);
        assert_eq!(delta.hijacked_upserts.len(), 1, "only c.com is new");
        assert_eq!(delta.hijacked_removed.len(), 1, "a.com disappeared");
        let mut replay = old.clone();
        delta.apply(&mut replay);
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&new).unwrap()
        );
    }

    #[test]
    fn changed_verdict_is_an_upsert() {
        let t = |d: &str, day: u32| DetectedTarget {
            domain: d.parse().unwrap(),
            sub: None,
            first_evidence: Day(day),
            pdns_corroborated: false,
            ct_corroborated: false,
            attacker_ip: None,
            attacker_asn: None,
            attacker_cc: None,
            victim_asns: vec![],
            victim_ccs: vec![],
        };
        let old = Report {
            targeted: vec![t("a.com", 1)],
            ..Report::default()
        };
        let new = Report {
            targeted: vec![t("a.com", 9)],
            ..Report::default()
        };
        let delta = WeekDelta::between(2, Day(14), &old, &new);
        assert_eq!(delta.targeted_upserts.len(), 1, "changed evidence re-emits");
        assert!(delta.targeted_removed.is_empty());
        let mut replay = old.clone();
        delta.apply(&mut replay);
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&new).unwrap()
        );
    }
}
