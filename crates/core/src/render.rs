//! ASCII rendering of deployment maps (Figure 2) and pattern galleries
//! (Figures 3–5).
//!
//! Each deployment renders as one row: a timeline of scan slots where `█`
//! marks a scan the deployment appeared in and `·` a scan it missed,
//! annotated with ASN, countries and certificates — the same information
//! the paper's figures convey.

use crate::classify::Pattern;
use crate::map::DeploymentMap;
use retrodns_types::Day;
use std::fmt::Write;

/// Render one deployment map as an ASCII timeline.
pub fn render_map(map: &DeploymentMap, pattern: Option<&Pattern>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Deployment map: {}  period {} [{} .. {})  visibility {:.0}%",
        map.domain,
        map.period.id,
        map.period.start,
        map.period.end,
        map.visibility() * 100.0
    );
    if let Some(p) = pattern {
        let _ = writeln!(out, "Pattern: {} ({})", p.label(), p.category());
    }
    let interval = map.scan_interval();
    let slots: Vec<Day> = (0..map.expected_scans)
        .map(|i| map.period.start + (i as u32) * interval)
        .collect();
    for (i, d) in map.deployments.iter().enumerate() {
        let mut lane = String::with_capacity(slots.len());
        for slot in &slots {
            let hit = d
                .dates
                .iter()
                .any(|date| *date >= *slot && *date < *slot + interval);
            lane.push(if hit { '#' } else { '.' });
        }
        let countries: Vec<String> = d.countries.iter().map(|c| c.to_string()).collect();
        let certs: Vec<String> = d.certs.iter().map(|c| c.0.to_string()).collect();
        let _ = writeln!(
            out,
            "  d{i} |{lane}| {}  [{}]  certs[{}]  {} scans, {} days",
            d.asn,
            countries.join(","),
            certs.join(","),
            d.scan_count(),
            d.span_days()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ClassifyConfig};
    use crate::map::MapBuilder;
    use retrodns_sim::archetypes::transient_archetypes;
    use retrodns_types::StudyWindow;

    #[test]
    fn render_contains_lanes_and_labels() {
        let arch = &transient_archetypes()[0]; // T1
        let maps = MapBuilder::new(StudyWindow::default()).build(&arch.observations);
        let pattern = classify(&maps[0], &ClassifyConfig::default());
        let s = render_map(&maps[0], Some(&pattern));
        assert!(s.contains("example.gov.kg"));
        assert!(s.contains("Pattern: T1"));
        assert!(s.contains("AS100"));
        assert!(s.contains("AS200"));
        // Two deployments → two lanes.
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 2);
        // The stable lane is mostly filled, the transient lane mostly not.
        let lanes: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let fill = |l: &str| l.chars().filter(|c| *c == '#').count();
        assert!(fill(lanes[0]) > 20);
        assert_eq!(fill(lanes[1]), 1);
    }

    #[test]
    fn render_without_pattern_omits_pattern_line() {
        let arch = &transient_archetypes()[0];
        let maps = MapBuilder::new(StudyWindow::default()).build(&arch.observations);
        let s = render_map(&maps[0], None);
        assert!(!s.contains("Pattern:"));
    }
}
