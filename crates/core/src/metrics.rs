//! Pipeline-wide metrics and tracing.
//!
//! Operating the pipeline at production scale — checkpointed, resumed,
//! fault-injected, sharded across workers — needs more observability
//! than the five wall-clock numbers in
//! [`PipelineTimings`](crate::observability::PipelineTimings). This
//! module is the registry every side-channel count funnels into:
//!
//! * **Counters** — monotone event counts (quarantine reasons, prune
//!   reasons, checkpoint loads/saves/invalidations, hijack verdicts).
//!   The `funnel.*` namespace mirrors [`FunnelStats`]
//!   field-for-field and is integration-test-asserted to reconcile
//!   exactly with the report.
//! * **Gauges** — point-in-time samples (per-stage wall time, items,
//!   worker utilization, RSS, allocation deltas).
//! * **Histograms** — fixed-bucket distributions (per-worker shard
//!   sizes, stage wall times). Buckets are cumulative-le on exposition,
//!   Prometheus-style.
//! * **Spans** — lightweight hierarchical timings. Opening a span
//!   records its depth; closing records its duration. With tracing
//!   enabled every open/close is narrated to stderr as it happens.
//!
//! ## Concurrency model: sharded, merge-on-collect
//!
//! The registry itself is single-threaded and lock-free. Parallel
//! workers never touch it: each worker accumulates into its own
//! [`MetricsShard`] (plain `BTreeMap`s, no atomics, no locks) and the
//! coordinating thread merges the shards after the crossbeam join —
//! exactly the merge-in-chunk-order discipline the pipeline already
//! uses for stage results (`DESIGN.md` §6). Merging is commutative for
//! counters and histograms; gauges are last-write-wins, so workers
//! record gauges under per-worker keys.
//!
//! ## Exposition
//!
//! A collected [`MetricsSnapshot`] serializes three ways:
//!
//! * JSON (`analyze --metrics-out metrics.json`) — struct fields in
//!   declaration order, map entries key-sorted: byte-deterministic
//!   schema for diffing and dashboards;
//! * Prometheus text exposition ([`MetricsSnapshot::to_prometheus`],
//!   `--metrics-format prom`) — counters, gauges, and cumulative
//!   `_bucket{le=...}` histogram series under the `retrodns_` prefix;
//! * a human trace narrative (`--trace`) — span open/close lines with
//!   durations, indented by depth, on stderr.
//!
//! The registry stays entirely out of [`Report`](crate::pipeline::Report)
//! serialization: report JSON remains byte-identical across worker
//! counts whether or not metrics are collected.
//!
//! [`FunnelStats`]: crate::pipeline::FunnelStats

use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Histogram bucket upper bounds (milliseconds / items — callers pick
/// the unit): a coarse exponential ladder that keeps every histogram
/// fixed-width and merge-compatible. The implicit final bucket is +Inf.
pub const HISTOGRAM_BOUNDS: [f64; 10] = [
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 10_000.0, 50_000.0,
];

/// A fixed-bucket histogram (bounds from [`HISTOGRAM_BOUNDS`], plus an
/// implicit +Inf overflow bucket at the end of `counts`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket observation counts; `counts[i]` holds observations
    /// `<= HISTOGRAM_BOUNDS[i]` (exclusive of lower buckets), and the
    /// final element is the +Inf overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; HISTOGRAM_BOUNDS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A worker-local batch of metric updates. No locks, no atomics: one
/// shard belongs to exactly one thread, and the coordinator merges
/// shards after joining the workers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsShard {
    /// Monotone counters by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by dotted name.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms by dotted name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsShard {
    /// Add `n` to a counter.
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Record per-worker wall time and item counts for one parallel
    /// stage, plus a `<stage>.utilization` gauge: total worker time over
    /// `workers × slowest worker` (1.0 = perfectly balanced chunks,
    /// lower = idle workers waiting on a straggler). A serial run is a
    /// one-element slice, so `<stage>.workers` doubles as a record of
    /// whether the adaptive fallback fired.
    pub fn record_worker_stats(&mut self, stage: &str, workers: &[(usize, std::time::Duration)]) {
        let mut max_ms = 0.0f64;
        let mut sum_ms = 0.0f64;
        for (i, (items, wall)) in workers.iter().enumerate() {
            let ms = wall.as_secs_f64() * 1e3;
            self.gauge(&format!("{stage}.worker.{i}.ms"), ms);
            self.gauge(&format!("{stage}.worker.{i}.items"), *items as f64);
            max_ms = max_ms.max(ms);
            sum_ms += ms;
        }
        self.gauge(&format!("{stage}.workers"), workers.len() as f64);
        if max_ms > 0.0 {
            self.gauge(
                &format!("{stage}.utilization"),
                sum_ms / (workers.len() as f64 * max_ms),
            );
        }
    }

    /// Fold another shard into this one. Counters and histograms add;
    /// gauges are last-write-wins in merge order (workers should use
    /// per-worker gauge keys to avoid clobbering).
    pub fn merge(&mut self, other: MetricsShard) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            self.gauges.insert(k, v);
        }
        for (k, h) in other.histograms {
            self.histograms.entry(k).or_default().merge(&h);
        }
    }
}

/// Handle returned by [`MetricsRegistry::span_open`]; pass it back to
/// [`MetricsRegistry::span_close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One completed (or still-open) span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Dotted span name (`pipeline.run`, `stage.map_build`, …).
    pub name: String,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
    /// Milliseconds since registry creation at open time.
    pub start_ms: f64,
    /// Span duration in milliseconds (0 until closed).
    pub wall_ms: f64,
}

/// The single-owner metrics registry: one per pipeline run.
///
/// Cheap to construct; every [`Pipeline::run`](crate::pipeline::Pipeline::run)
/// uses one internally even when the caller never looks at it (the
/// recording cost is a handful of `BTreeMap` updates per *stage*, not
/// per record — see the `<5 %` overhead budget in `DESIGN.md` §8).
#[derive(Debug)]
pub struct MetricsRegistry {
    root: MetricsShard,
    spans: Vec<SpanRecord>,
    open: Vec<SpanId>,
    epoch: Instant,
    trace: bool,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A silent registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            root: MetricsShard::default(),
            spans: Vec::new(),
            open: Vec::new(),
            epoch: Instant::now(),
            trace: false,
        }
    }

    /// A registry that narrates span open/close events to stderr.
    pub fn with_trace(trace: bool) -> MetricsRegistry {
        MetricsRegistry {
            trace,
            ..MetricsRegistry::new()
        }
    }

    /// Is stderr span narration on?
    pub fn tracing(&self) -> bool {
        self.trace
    }

    /// Add `n` to a counter.
    pub fn count(&mut self, name: &str, n: u64) {
        self.root.count(name, n);
    }

    /// Set a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.root.gauge(name, value);
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.root.observe(name, value);
    }

    /// Merge a worker shard (collected after a crossbeam join).
    pub fn merge(&mut self, shard: MetricsShard) {
        self.root.merge(shard);
    }

    /// Drain the accumulated counters/gauges/histograms, leaving the
    /// registry empty (spans stay). A long-running service uses this to
    /// fold per-ingest registries into one process-wide exposition
    /// registry without holding its lock across the ingest itself.
    pub fn take_shard(&mut self) -> MetricsShard {
        std::mem::take(&mut self.root)
    }

    /// Open a hierarchical span.
    pub fn span_open(&mut self, name: &str) -> SpanId {
        let depth = self.open.len();
        let id = SpanId(self.spans.len());
        self.spans.push(SpanRecord {
            name: name.to_string(),
            depth,
            start_ms: self.epoch.elapsed().as_secs_f64() * 1e3,
            wall_ms: 0.0,
        });
        self.open.push(id);
        if self.trace {
            eprintln!("{:indent$}-> {name}", "", indent = depth * 2);
        }
        id
    }

    /// Close a span, recording its duration (and narrating it under
    /// `--trace`). Closing out of order closes the given span anyway;
    /// any spans opened after it are popped with it.
    pub fn span_close(&mut self, id: SpanId) {
        let wall_ms = self.epoch.elapsed().as_secs_f64() * 1e3 - self.spans[id.0].start_ms;
        self.spans[id.0].wall_ms = wall_ms;
        if let Some(pos) = self.open.iter().position(|o| *o == id) {
            self.open.truncate(pos);
        }
        if self.trace {
            let s = &self.spans[id.0];
            eprintln!(
                "{:indent$}<- {} {:.2} ms",
                "",
                s.name,
                s.wall_ms,
                indent = s.depth * 2
            );
        }
    }

    /// Collect everything recorded so far into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.root.counters.clone(),
            gauges: self.root.gauges.clone(),
            histograms: self.root.histograms.clone(),
            spans: self.spans.clone(),
        }
    }
}

/// A point-in-time collection of every metric, ready for exposition.
/// Field order (and `BTreeMap` key order) is the stable JSON schema.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Completed spans in open order.
    pub spans: Vec<SpanRecord>,
}

/// Sanitize a dotted metric name into a Prometheus metric name.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl MetricsSnapshot {
    /// Pretty JSON exposition (deterministic key order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Prometheus text exposition (format version 0.0.4): counters,
    /// gauges, and cumulative-`le` histogram series, all under the
    /// `retrodns_` prefix.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE retrodns_{n} counter");
            let _ = writeln!(out, "retrodns_{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE retrodns_{n} gauge");
            let _ = writeln!(out, "retrodns_{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE retrodns_{n} histogram");
            let mut cumulative = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match HISTOGRAM_BOUNDS.get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "retrodns_{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "retrodns_{n}_sum {}", h.sum);
            let _ = writeln!(out, "retrodns_{n}_count {}", h.count);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Memory sampling hooks
// ---------------------------------------------------------------------

/// Parse a `VmRSS:`/`VmHWM:` line (kB) out of `/proc/self/status`.
#[cfg(target_os = "linux")]
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resident set size right now, in kB (`None` off Linux).
pub fn rss_kb_now() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmRSS:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Peak resident set size of the process, in kB (`None` off Linux).
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmHWM:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

// ---------------------------------------------------------------------
// Allocation counting
// ---------------------------------------------------------------------

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Binaries opt in:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: retrodns_core::metrics::CountingAlloc = CountingAlloc;
/// ```
///
/// Relaxed-ordering atomics on the allocation path: two uncontended
/// fetch-adds per `alloc`, nothing on `dealloc`, so the counter is a
/// lifetime *allocation* total (not live bytes) — the right shape for
/// per-stage allocation deltas.
pub struct CountingAlloc;

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total bytes requested from the allocator since process start (0 when
/// [`CountingAlloc`] is not installed as the global allocator).
pub fn allocated_bytes_total() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Total allocation calls since process start (0 when [`CountingAlloc`]
/// is not installed).
pub fn allocation_count_total() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

/// Is allocation counting live (i.e. is [`CountingAlloc`] installed)?
pub fn alloc_counting_active() -> bool {
    allocation_count_total() > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_and_merge() {
        let mut reg = MetricsRegistry::new();
        reg.count("a.b", 2);
        reg.count("a.b", 3);
        reg.gauge("g", 1.5);

        let mut shard = MetricsShard::default();
        shard.count("a.b", 10);
        shard.count("c", 1);
        shard.gauge("g2", 7.0);
        reg.merge(shard);

        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("a.b"), Some(&15));
        assert_eq!(snap.counters.get("c"), Some(&1));
        assert_eq!(snap.gauges.get("g"), Some(&1.5));
        assert_eq!(snap.gauges.get("g2"), Some(&7.0));
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut a = Histogram::default();
        a.observe(0.5); // bucket 0 (<= 1)
        a.observe(7.0); // bucket 2 (<= 10)
        a.observe(1e9); // +Inf overflow
        let mut b = Histogram::default();
        b.observe(7.0);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.counts[0], 1);
        assert_eq!(a.counts[2], 2);
        assert_eq!(a.counts[HISTOGRAM_BOUNDS.len()], 1);
        assert!((a.sum - (0.5 + 7.0 + 1e9 + 7.0)).abs() < 1e-6);
    }

    #[test]
    fn spans_nest_and_close() {
        let mut reg = MetricsRegistry::new();
        let outer = reg.span_open("outer");
        let inner = reg.span_open("inner");
        reg.span_close(inner);
        reg.span_close(outer);
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].depth, 0);
        assert_eq!(snap.spans[1].name, "inner");
        assert_eq!(snap.spans[1].depth, 1);
        assert!(snap.spans[1].wall_ms <= snap.spans[0].wall_ms + 1e-3);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.count("z.last", 1);
            reg.count("a.first", 2);
            reg.gauge("mid", 3.0);
            reg.observe("h", 2.0);
            let mut snap = reg.snapshot();
            snap.spans.clear(); // timings vary run to run
            snap.to_json()
        };
        assert_eq!(build(), build());
        // Key-sorted: "a.first" serializes before "z.last".
        let json = build();
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = MetricsRegistry::new();
        reg.count("funnel.shortlisted", 4);
        reg.gauge("stage.map_build.wall_ms", 12.5);
        reg.observe("map_build.shard_items", 3.0);
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE retrodns_funnel_shortlisted counter"));
        assert!(prom.contains("retrodns_funnel_shortlisted 4"));
        assert!(prom.contains("# TYPE retrodns_stage_map_build_wall_ms gauge"));
        assert!(prom.contains("retrodns_map_build_shard_items_bucket{le=\"5\"} 1"));
        assert!(prom.contains("retrodns_map_build_shard_items_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("retrodns_map_build_shard_items_count 1"));
    }

    #[test]
    fn memory_hooks_report_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(rss_kb_now().unwrap_or(0) > 0);
            assert!(peak_rss_kb().unwrap_or(0) >= rss_kb_now().unwrap_or(0));
        }
    }
}
