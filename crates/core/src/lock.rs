//! Checkpoint-directory lockfile.
//!
//! Two processes pointed at the same `--checkpoint-dir` would interleave
//! stage snapshots and observation-log chunks, corrupting both runs in a
//! way the content hashes only catch after the fact. [`DirLock`] prevents
//! that up front: a `lock.json` in the checkpoint dir records the holder's
//! PID, a random token, and a heartbeat timestamp. Acquisition is atomic
//! (`O_CREAT | O_EXCL`); a lock whose holder is dead or whose heartbeat is
//! older than the staleness budget is taken over so a SIGKILLed run never
//! wedges the directory. Long-running holders call [`DirLock::heartbeat`]
//! at natural progress points (the streaming path does so once per
//! ingested week) to keep the lock fresh.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// File name of the lock inside the guarded directory.
pub const LOCK_FILE: &str = "lock.json";

/// Default staleness budget: a heartbeat older than this (from a live PID)
/// is treated as abandoned.
pub const DEFAULT_STALE_MS: u64 = 30_000;

/// What `lock.json` holds on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LockInfo {
    pid: u32,
    token: u64,
    heartbeat_ms: u64,
}

/// Why a lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// PID recorded in the lockfile.
        pid: u32,
        /// Milliseconds since the holder's last heartbeat.
        age_ms: u64,
    },
    /// Filesystem error while acquiring.
    Io(io::Error),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { pid, age_ms } => write!(
                f,
                "held by pid {pid} (heartbeat {age_ms} ms ago); \
                 another analysis appears to be running against this checkpoint dir"
            ),
            LockError::Io(e) => write!(f, "lockfile io error: {e}"),
        }
    }
}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> Self {
        LockError::Io(e)
    }
}

/// An exclusive, heartbeat-refreshed lock on a directory.
///
/// Released on drop (best effort: the file is only removed if it still
/// carries this lock's token, so a takeover by another process is never
/// clobbered).
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
    token: u64,
    stale_ms: u64,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Best-effort liveness probe. On Linux `/proc/<pid>` exists exactly while
/// the process does; elsewhere we conservatively assume the holder is
/// alive and rely on the heartbeat age alone.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

impl DirLock {
    /// Acquire the lock on `dir` (created if missing) with the default
    /// staleness budget.
    pub fn acquire(dir: &Path) -> Result<DirLock, LockError> {
        DirLock::acquire_with(dir, DEFAULT_STALE_MS)
    }

    /// Acquire the lock on `dir`, treating heartbeats older than
    /// `stale_ms` (or a dead holder PID) as abandoned and taking over.
    pub fn acquire_with(dir: &Path, stale_ms: u64) -> Result<DirLock, LockError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        // A token, not a PID, identifies *this* acquisition: PIDs recycle
        // and the same process may legitimately re-lock after a takeover.
        let token = now_ms()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(std::process::id() as u64);
        // One takeover attempt at most: if the file reappears after we
        // removed a stale lock, a concurrent acquirer won the race.
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => {
                    let info = LockInfo {
                        pid: std::process::id(),
                        token,
                        heartbeat_ms: now_ms(),
                    };
                    let body = serde_json::to_string(&info)
                        .map_err(|e| LockError::Io(io::Error::other(e.to_string())))?;
                    let mut file = file;
                    io::Write::write_all(&mut file, body.as_bytes())?;
                    return Ok(DirLock {
                        path,
                        token,
                        stale_ms,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder: Option<LockInfo> = fs::read(&path)
                        .ok()
                        .and_then(|b| serde_json::from_slice(&b).ok());
                    let stale = match &holder {
                        // Unreadable or torn lockfile: the writer died
                        // mid-write; treat as abandoned.
                        None => true,
                        Some(info) => {
                            let age = now_ms().saturating_sub(info.heartbeat_ms);
                            info.pid == std::process::id() || !pid_alive(info.pid) || age > stale_ms
                        }
                    };
                    if !stale || attempt == 1 {
                        let (pid, age_ms) = holder
                            .map(|i| (i.pid, now_ms().saturating_sub(i.heartbeat_ms)))
                            .unwrap_or((0, 0));
                        return Err(LockError::Held { pid, age_ms });
                    }
                    fs::remove_file(&path).or_else(|e| {
                        if e.kind() == io::ErrorKind::NotFound {
                            Ok(())
                        } else {
                            Err(e)
                        }
                    })?;
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        unreachable!("lock acquisition loop always returns");
    }

    /// Refresh the heartbeat so other processes keep seeing the lock as
    /// live. Written atomically (tmp + rename) so a concurrent staleness
    /// probe never reads a torn file.
    pub fn heartbeat(&self) -> io::Result<()> {
        let info = LockInfo {
            pid: std::process::id(),
            token: self.token,
            heartbeat_ms: now_ms(),
        };
        let body = serde_json::to_string(&info).map_err(|e| io::Error::other(e.to_string()))?;
        let tmp = self.path.with_extension("json.tmp");
        fs::write(&tmp, body)?;
        fs::rename(&tmp, &self.path)
    }

    /// Milliseconds after which other processes may take this lock over if
    /// the heartbeat is not refreshed.
    pub fn stale_ms(&self) -> u64 {
        self.stale_ms
    }

    /// Path of the lockfile itself.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Only remove the file if it is still *our* acquisition; a takeover
        // (e.g. after a long GC pause pushed us past the staleness budget)
        // must not have its lock deleted out from under it.
        let ours = fs::read(&self.path)
            .ok()
            .and_then(|b| serde_json::from_slice::<LockInfo>(&b).ok())
            .map(|info| info.token == self.token)
            .unwrap_or(false);
        if ours {
            let _ = fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "retrodns-lock-{name}-{}-{}",
            std::process::id(),
            now_ms()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plant_lock(dir: &Path, pid: u32, heartbeat_ms: u64) {
        let info = LockInfo {
            pid,
            token: 42,
            heartbeat_ms,
        };
        fs::write(dir.join(LOCK_FILE), serde_json::to_string(&info).unwrap()).unwrap();
    }

    #[test]
    fn acquire_and_release() {
        let dir = tmp_dir("basic");
        let lock = DirLock::acquire(&dir).unwrap();
        assert!(dir.join(LOCK_FILE).exists());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_foreign_holder_blocks() {
        let dir = tmp_dir("held");
        // PID 1 is always alive on Linux; a fresh heartbeat makes the lock
        // unambiguously live.
        plant_lock(&dir, 1, now_ms());
        match DirLock::acquire(&dir) {
            Err(LockError::Held { pid, .. }) => assert_eq!(pid, 1),
            other => panic!("expected Held, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_heartbeat_taken_over() {
        let dir = tmp_dir("stale");
        plant_lock(&dir, 1, now_ms().saturating_sub(120_000));
        let lock = DirLock::acquire_with(&dir, 30_000).unwrap();
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dead_holder_taken_over_even_with_fresh_heartbeat() {
        let dir = tmp_dir("dead");
        // No real process gets this PID (kernel pid_max is far lower by
        // default); a fresh heartbeat must not save a dead holder.
        plant_lock(&dir, 3_999_999, now_ms());
        let lock = DirLock::acquire(&dir).unwrap();
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lockfile_taken_over() {
        let dir = tmp_dir("corrupt");
        fs::write(dir.join(LOCK_FILE), b"{ torn wri").unwrap();
        let lock = DirLock::acquire(&dir).unwrap();
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_refreshes_timestamp() {
        let dir = tmp_dir("beat");
        let lock = DirLock::acquire(&dir).unwrap();
        let before: LockInfo =
            serde_json::from_slice(&fs::read(dir.join(LOCK_FILE)).unwrap()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        lock.heartbeat().unwrap();
        let after: LockInfo =
            serde_json::from_slice(&fs::read(dir.join(LOCK_FILE)).unwrap()).unwrap();
        assert!(after.heartbeat_ms > before.heartbeat_ms);
        assert_eq!(after.token, before.token);
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn takeover_does_not_delete_new_holders_lock_on_drop() {
        let dir = tmp_dir("takeover-drop");
        let old = DirLock::acquire(&dir).unwrap();
        // Simulate the old holder being declared stale and taken over:
        // plant a foreign lock over ours, then drop the old guard.
        plant_lock(&dir, 1, now_ms());
        drop(old);
        assert!(
            dir.join(LOCK_FILE).exists(),
            "drop of a superseded lock must not remove the new holder's file"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
