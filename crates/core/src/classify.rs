//! Stage 2: pattern classification (§4.2, Figures 3–5).
//!
//! Every deployment map is assigned exactly one pattern:
//!
//! * **Stable (S1–S4)** — the same ASNs serve the domain throughout the
//!   period; certificates may roll over (S2), geography may expand within
//!   the AS (S3), a new certificate may appear on the same infrastructure
//!   (S4).
//! * **Transition (X1–X3)** — a new AS appears and *persists to the end
//!   of the period* (expansion X1/X2) or fully replaces the old one
//!   (migration X3). Long-term-stable changes are benign.
//! * **Transient (T1/T2)** — a deployment in a different AS that appears
//!   *and disappears* within the period, living less than the transient
//!   threshold (3 months — the free-certificate lifetime). T1 presents a
//!   certificate the stable deployment never used; T2 presents the stable
//!   deployment's own certificate (proxy prelude).
//! * **Noisy** — no stable background to compare against; the paper
//!   excludes these from inference (footnote 7).

use crate::map::DeploymentMap;
use retrodns_cert::CertId;
use retrodns_types::{Asn, CountryCode, Day};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Stable sub-patterns (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StableKind {
    /// Single deployment, single certificate.
    S1,
    /// Certificate rollover within the deployment.
    S2,
    /// Geographic expansion within the same AS.
    S3,
    /// New certificate on the same infrastructure.
    S4,
}

/// Transition sub-patterns (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Expansion into an additional AS with an existing certificate.
    X1,
    /// Expansion into an additional AS with a new certificate.
    X2,
    /// Migration: old infrastructure torn down, new persists.
    X3,
}

/// Transient sub-patterns (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransientKind {
    /// Transient presents a certificate the stable deployment never used.
    T1,
    /// Transient presents the stable deployment's own certificate.
    T2,
}

/// One suspicious transient deployment within a map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientFinding {
    /// Index into `map.deployments`.
    pub deployment: usize,
    /// T1 or T2.
    pub kind: TransientKind,
    /// Certificates the transient presented that the stable background
    /// never did (empty for T2).
    pub new_certs: BTreeSet<CertId>,
}

/// The stable background a transient is judged against.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StableBackground {
    /// Indices of the background deployments.
    pub deployments: Vec<usize>,
    /// Union of background ASNs.
    pub asns: BTreeSet<Asn>,
    /// Union of background countries.
    pub countries: BTreeSet<CountryCode>,
    /// Union of background certificates.
    pub certs: BTreeSet<CertId>,
}

/// The classification of one deployment map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Benign stable map.
    Stable(StableKind),
    /// Benign long-term change.
    Transition(TransitionKind),
    /// One or more suspicious transients against a stable background.
    Transient {
        /// The transient deployments found.
        findings: Vec<TransientFinding>,
        /// The background they are judged against.
        background: StableBackground,
    },
    /// No stable background; excluded from inference.
    Noisy,
}

impl Pattern {
    /// The short figure label ("S1" … "T2", "Noisy").
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Stable(StableKind::S1) => "S1",
            Pattern::Stable(StableKind::S2) => "S2",
            Pattern::Stable(StableKind::S3) => "S3",
            Pattern::Stable(StableKind::S4) => "S4",
            Pattern::Transition(TransitionKind::X1) => "X1",
            Pattern::Transition(TransitionKind::X2) => "X2",
            Pattern::Transition(TransitionKind::X3) => "X3",
            Pattern::Transient { findings, .. } => {
                if findings.iter().any(|f| f.kind == TransientKind::T1) {
                    "T1"
                } else {
                    "T2"
                }
            }
            Pattern::Noisy => "Noisy",
        }
    }

    /// Top-level category ("stable", "transition", "transient", "noisy").
    pub fn category(&self) -> &'static str {
        match self {
            Pattern::Stable(_) => "stable",
            Pattern::Transition(_) => "transition",
            Pattern::Transient { .. } => "transient",
            Pattern::Noisy => "noisy",
        }
    }
}

/// Classifier thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifyConfig {
    /// Maximum lifetime (days) of a bounded deployment to count as
    /// transient — the paper's 3 months ≈ free-certificate validity.
    pub transient_max_days: u32,
    /// How many scan intervals from a period edge still count as
    /// "covering" that edge.
    pub edge_margin_scans: u32,
    /// Minimum fraction of the period a lone deployment must span to be
    /// called stable rather than unclassifiable.
    pub min_stable_coverage: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            transient_max_days: 90,
            edge_margin_scans: 2,
            min_stable_coverage: 0.6,
        }
    }
}

/// Classify one deployment map.
pub fn classify(map: &DeploymentMap, cfg: &ClassifyConfig) -> Pattern {
    if map.deployments.is_empty() {
        return Pattern::Noisy;
    }
    let period_len = map.period.len_days();
    let interval = map.scan_interval();
    let margin = (cfg.edge_margin_scans + 1) * interval;
    let start_edge = map.period.start + margin;
    // Fully saturating: a quarantine-degraded or zero-/one-day period can
    // put `end` at `Day(0)`, where a bare `- 1` underflows.
    let end_edge = Day(map.period.end.0.saturating_sub(1).saturating_sub(margin));

    let covers_start = |i: usize| map.deployments[i].first <= start_edge;
    let covers_end = |i: usize| map.deployments[i].last >= end_edge;

    // Sub-pattern of a deployment judged stable on its own: concurrent
    // certificates ⇒ S4, late-appearing country ⇒ S3, rollover ⇒ S2.
    let stable_kind_of = |i: usize| -> StableKind {
        let d = &map.deployments[i];
        if d.certs.len() > 1 && d.has_concurrent_certs() {
            StableKind::S4
        } else if d.country_added_after(margin) {
            StableKind::S3
        } else if d.certs.len() <= 1 {
            StableKind::S1
        } else {
            StableKind::S2
        }
    };

    // A lone deployment has nothing to be compared against.
    if map.deployments.len() == 1 {
        let d = &map.deployments[0];
        let coverage = d.span_days() as f64 / period_len as f64;
        if coverage >= cfg.min_stable_coverage || (covers_start(0) && covers_end(0)) {
            return Pattern::Stable(stable_kind_of(0));
        }
        return Pattern::Noisy;
    }

    let stable: Vec<usize> = (0..map.deployments.len())
        .filter(|&i| covers_start(i) && covers_end(i))
        .collect();

    if stable.is_empty() {
        // Migration handoff: something covered the start, something else
        // covers the end, and there are only a couple of deployments in
        // play. Many deployments with no stable background is churn.
        if map.deployments.len() <= 3 {
            let old = (0..map.deployments.len()).find(|&i| covers_start(i));
            let new = (0..map.deployments.len()).find(|&i| covers_end(i));
            if let (Some(o), Some(n)) = (old, new) {
                if o != n {
                    return Pattern::Transition(TransitionKind::X3);
                }
            }
        }
        return Pattern::Noisy;
    }

    let background = {
        let mut bg = StableBackground {
            deployments: stable.clone(),
            ..StableBackground::default()
        };
        for &i in &stable {
            let d = &map.deployments[i];
            bg.asns.insert(d.asn);
            bg.countries.extend(d.countries.iter().copied());
            bg.certs.extend(d.certs.iter().copied());
        }
        bg
    };
    let stable_ips: BTreeSet<_> = stable
        .iter()
        .flat_map(|&i| map.deployments[i].ips.iter().copied())
        .collect();

    let mut findings: Vec<TransientFinding> = Vec::new();
    let mut transition: Option<TransitionKind> = None;
    let mut stable_kind_upgrade: Option<StableKind> = None;

    for i in 0..map.deployments.len() {
        if stable.contains(&i) {
            continue;
        }
        let d = &map.deployments[i];
        let starts_mid = !covers_start(i);
        let ends_early = !covers_end(i);
        match (starts_mid, ends_early) {
            (true, false) => {
                // Appears mid-period and persists: expansion.
                if background.asns.contains(&d.asn) {
                    // Same AS: S3 (new location) or S4 (new cert, same infra).
                    let kind = if d.ips.is_subset(&stable_ips) {
                        StableKind::S4
                    } else if d.certs.is_subset(&background.certs) {
                        StableKind::S3
                    } else {
                        StableKind::S4
                    };
                    stable_kind_upgrade = Some(match (stable_kind_upgrade, kind) {
                        (Some(StableKind::S4), _) | (_, StableKind::S4) => StableKind::S4,
                        _ => StableKind::S3,
                    });
                } else if d.certs.is_subset(&background.certs) {
                    transition = Some(match transition {
                        Some(TransitionKind::X3) => TransitionKind::X3,
                        Some(TransitionKind::X2) => TransitionKind::X2,
                        _ => TransitionKind::X1,
                    });
                } else {
                    transition = Some(match transition {
                        Some(TransitionKind::X3) => TransitionKind::X3,
                        _ => TransitionKind::X2,
                    });
                }
            }
            (false, true) => {
                // Covered the start, torn down: migration/scale-down.
                transition = Some(TransitionKind::X3);
            }
            (true, true) => {
                // Bounded mid-period deployment.
                if background.asns.contains(&d.asn) {
                    // Same-AS flicker; linking artifact or short test —
                    // not the foreign-infrastructure signature.
                    continue;
                }
                if d.span_days() <= cfg.transient_max_days {
                    let new_certs: BTreeSet<CertId> =
                        d.certs.difference(&background.certs).copied().collect();
                    let kind = if new_certs.is_empty() {
                        TransientKind::T2
                    } else {
                        TransientKind::T1
                    };
                    findings.push(TransientFinding {
                        deployment: i,
                        kind,
                        new_certs,
                    });
                } else {
                    // Long-lived bounded change: treat as migration-ish.
                    transition = Some(TransitionKind::X3);
                }
            }
            (false, false) => unreachable!("covered both edges yet not stable"),
        }
    }

    if !findings.is_empty() {
        return Pattern::Transient {
            findings,
            background,
        };
    }
    if let Some(t) = transition {
        return Pattern::Transition(t);
    }
    if let Some(s) = stable_kind_upgrade {
        return Pattern::Stable(s);
    }
    // Purely stable: the richest sub-pattern across background
    // deployments wins (S4 > S3 > S2 > S1).
    let kind = stable
        .iter()
        .map(|&i| stable_kind_of(i))
        .max_by_key(|k| match k {
            StableKind::S1 => 0,
            StableKind::S2 => 1,
            StableKind::S3 => 2,
            StableKind::S4 => 3,
        })
        .expect("stable set non-empty");
    Pattern::Stable(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapBuilder;
    use retrodns_sim::archetypes::all_archetypes;
    use retrodns_types::StudyWindow;

    /// Every archetype of Figures 3–5 classifies to its expected label.
    #[test]
    fn archetypes_classify_as_expected() {
        let builder = MapBuilder::new(StudyWindow::default());
        let cfg = ClassifyConfig::default();
        for arch in all_archetypes() {
            let maps = builder.build(&arch.observations);
            assert_eq!(maps.len(), 1, "{}: one map expected", arch.label);
            let pattern = classify(&maps[0], &cfg);
            assert_eq!(
                pattern.label(),
                arch.expected,
                "{} ({}) misclassified as {:?}",
                arch.label,
                arch.description,
                pattern
            );
        }
    }

    #[test]
    fn empty_map_is_noisy() {
        let map = DeploymentMap {
            domain: "x.com".parse().unwrap(),
            period: StudyWindow::default().periods()[0],
            deployments: vec![],
            dates_present: vec![],
            expected_scans: 26,
        };
        assert_eq!(classify(&map, &ClassifyConfig::default()), Pattern::Noisy);
    }

    /// Regression: a quarantine-degraded period can end at `Day(0)` (or
    /// one day later). The old edge computation did a bare
    /// `map.period.end.0 - 1` before its `saturating_sub`, which panics
    /// in debug builds the moment such a period reaches the classifier.
    #[test]
    fn degenerate_period_does_not_underflow() {
        use crate::map::Deployment;
        use retrodns_types::{Asn, Period};
        use std::collections::{BTreeMap, BTreeSet};
        let deployment = Deployment {
            asn: Asn(100),
            first: Day(0),
            last: Day(0),
            dates: vec![Day(0)],
            ips: BTreeSet::from([retrodns_types::Ipv4Addr(1)]),
            certs: BTreeSet::from([CertId(1)]),
            countries: BTreeSet::new(),
            trusted_certs: BTreeSet::new(),
            cert_windows: BTreeMap::new(),
            country_windows: BTreeMap::new(),
        };
        for end in [0u32, 1] {
            let map = DeploymentMap {
                domain: "x.com".parse().unwrap(),
                period: Period {
                    id: 0,
                    start: Day(0),
                    end: Day(end),
                },
                deployments: vec![deployment.clone()],
                dates_present: vec![Day(0)],
                expected_scans: 1,
            };
            // Must classify without panicking; the verdict itself is
            // secondary for a degenerate period.
            let _ = classify(&map, &ClassifyConfig::default());
        }
    }

    #[test]
    fn lone_short_deployment_is_noisy() {
        // A domain visible for only three weeks mid-period (the
        // no-stable-infra hijack shape): nothing to compare against.
        use retrodns_scan::DomainObservation;
        use retrodns_types::{Asn, Day, Ipv4Addr};
        let observations: Vec<_> = (10..13)
            .map(|i| DomainObservation {
                domain: "x.com".parse().unwrap(),
                date: Day(i * 7),
                ip: Ipv4Addr(1),
                asn: Some(Asn(200)),
                country: "NL".parse().ok(),
                cert: retrodns_cert::CertId(1),
                trusted: true,
            })
            .collect();
        let maps = MapBuilder::new(StudyWindow::default()).build(&observations);
        assert_eq!(
            classify(&maps[0], &ClassifyConfig::default()),
            Pattern::Noisy
        );
    }

    #[test]
    fn transient_threshold_separates_t_from_x() {
        use retrodns_scan::DomainObservation;
        use retrodns_types::{Asn, Day, Ipv4Addr};
        let mk = |weeks: std::ops::Range<u32>, asn: u32, cert: u64| -> Vec<DomainObservation> {
            weeks
                .map(|i| DomainObservation {
                    domain: "x.com".parse().unwrap(),
                    date: Day(i * 7),
                    ip: Ipv4Addr(asn),
                    asn: Some(Asn(asn)),
                    country: "NL".parse().ok(),
                    cert: retrodns_cert::CertId(cert),
                    trusted: true,
                })
                .collect()
        };
        let cfg = ClassifyConfig::default();
        let builder = MapBuilder::new(StudyWindow::default());

        // 8-week foreign deployment: transient (56 days < 90).
        let mut obs = mk(0..26, 100, 1);
        obs.extend(mk(8..16, 200, 2));
        let p = classify(&builder.build(&obs)[0], &cfg);
        assert_eq!(p.label(), "T1");

        // 15-week foreign deployment (98 days > 90): a long-lived change.
        let mut obs = mk(0..26, 100, 1);
        obs.extend(mk(5..20, 200, 2));
        let p = classify(&builder.build(&obs)[0], &cfg);
        assert_eq!(p.label(), "X3");
    }

    #[test]
    fn same_asn_flicker_is_not_transient() {
        use retrodns_scan::DomainObservation;
        use retrodns_types::{Asn, Day, Ipv4Addr};
        let mut obs: Vec<DomainObservation> = (0..26)
            .map(|i| DomainObservation {
                domain: "x.com".parse().unwrap(),
                date: Day(i * 7),
                ip: Ipv4Addr(1),
                asn: Some(Asn(100)),
                country: "GR".parse().ok(),
                cert: retrodns_cert::CertId(1),
                trusted: true,
            })
            .collect();
        // A second IP in the SAME ASN appears for one scan with the same
        // cert — e.g. anycast jitter. Builder links it into the same
        // deployment (same ASN), so the map stays stable.
        obs.push(DomainObservation {
            domain: "x.com".parse().unwrap(),
            date: Day(70),
            ip: Ipv4Addr(2),
            asn: Some(Asn(100)),
            country: "GR".parse().ok(),
            cert: retrodns_cert::CertId(1),
            trusted: true,
        });
        let maps = MapBuilder::new(StudyWindow::default()).build(&obs);
        let p = classify(&maps[0], &ClassifyConfig::default());
        assert_eq!(p.category(), "stable");
    }

    #[test]
    fn multiple_transients_all_reported() {
        use retrodns_scan::DomainObservation;
        use retrodns_types::{Asn, Day, Ipv4Addr};
        let mk = |week: u32, ip: u32, asn: u32, cert: u64| DomainObservation {
            domain: "x.com".parse().unwrap(),
            date: Day(week * 7),
            ip: Ipv4Addr(ip),
            asn: Some(Asn(asn)),
            country: "NL".parse().ok(),
            cert: retrodns_cert::CertId(cert),
            trusted: true,
        };
        let mut obs: Vec<DomainObservation> = (0..26).map(|i| mk(i, 1, 100, 1)).collect();
        obs.push(mk(8, 50, 200, 666));
        obs.push(mk(16, 60, 300, 1)); // T2-style: stable cert from foreign AS
        let maps = MapBuilder::new(StudyWindow::default()).build(&obs);
        let p = classify(&maps[0], &ClassifyConfig::default());
        match p {
            Pattern::Transient {
                findings,
                background,
            } => {
                assert_eq!(findings.len(), 2);
                let kinds: Vec<TransientKind> = findings.iter().map(|f| f.kind).collect();
                assert!(kinds.contains(&TransientKind::T1));
                assert!(kinds.contains(&TransientKind::T2));
                assert_eq!(background.asns.len(), 1);
            }
            other => panic!("expected transient, got {other:?}"),
        }
    }
}
