//! Stage 3: shortlisting suspicious transients (§4.3).
//!
//! Transient-classified maps are pruned by four heuristics, each targeting
//! a concrete benign explanation:
//!
//! 1. **Organizational relatedness** — the transient ASN belongs to the
//!    same organization as a stable ASN (Amazon AS16509 vs AS14618).
//! 2. **Geolocation** — the transient geolocates to a country the stable
//!    deployment already uses.
//! 3. **Visibility** — the domain is missing from > 20 % of the period's
//!    scans, or shows similar transients in ≥ 3 consecutive periods: our
//!    view of it is too unstable to judge.
//! 4. **Sensitivity** — keep only transients whose browser-trusted
//!    certificate secures a *sensitive* subdomain; everything else is
//!    kept only when *truly anomalous* (a lone transient bracketed by
//!    fully stable periods).
//!
//! Every pruned map carries its [`PruneReason`], which the ablation
//! experiment histograms.

use crate::classify::{Pattern, StableBackground, TransientFinding};
use crate::map::{Deployment, DeploymentMap};
use crate::sources::{query_key, ResilientSource, SourcePolicy};
use retrodns_asdb::AsDatabase;
use retrodns_cert::{CertId, Certificate};
use retrodns_types::{Asn, CountryCode, DomainName, Period, PeriodId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Why a transient map was pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruneReason {
    /// Transient ASN organizationally related to a stable ASN.
    RelatedOrg,
    /// Transient geolocates to a stable deployment's country.
    SameCountry,
    /// Domain missing from too many scans in the period.
    LowVisibility,
    /// Similar transients in three-plus consecutive periods.
    RepeatedTransients,
    /// No sensitive trusted certificate and not truly anomalous.
    NotSensitiveNotAnomalous,
}

impl PruneReason {
    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            PruneReason::RelatedOrg => "related-org",
            PruneReason::SameCountry => "same-country",
            PruneReason::LowVisibility => "low-visibility",
            PruneReason::RepeatedTransients => "repeated-transients",
            PruneReason::NotSensitiveNotAnomalous => "not-sensitive-not-anomalous",
        }
    }
}

/// A shortlisted suspicious transient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    /// The domain.
    pub domain: DomainName,
    /// Period the transient was observed in.
    pub period: Period,
    /// The transient finding (kind, new certs).
    pub finding: TransientFinding,
    /// The transient deployment itself.
    pub transient: Deployment,
    /// The stable background it was judged against.
    pub background: StableBackground,
    /// The transient is *truly anomalous*: the only transient in this
    /// period's map, bracketed by fully stable periods. Licenses the
    /// "targeted but not hijacked" verdict when corroboration is absent.
    pub truly_anomalous: bool,
    /// Shortlisted *via* the truly-anomalous route (no sensitive trusted
    /// certificate) rather than the sensitive-name route — the paper's
    /// "47 domains shortlisted for being truly anomalous".
    pub via_anomalous_route: bool,
    /// The sensitive names secured by the transient's trusted certs.
    pub sensitive_names: Vec<DomainName>,
    /// Sources that stayed unavailable while judging this candidate
    /// (currently only `as2org`): the shortlist kept it rather than
    /// prune on missing evidence, and inspection must report it under
    /// the degraded tier.
    #[serde(default)]
    pub degraded_sources: Vec<String>,
    /// Cross-period recurrence (slow-burn signal): length of the run of
    /// consecutive periods showing a similar transient, when the
    /// recurrence signal kept a candidate the repeat heuristic would
    /// have pruned. Zero for ordinary candidates.
    #[serde(default, skip_serializing_if = "serde::__is_default")]
    pub recurrent_periods: usize,
    /// Geo-implausibility (BGP-assisted-hijack signal): the transient
    /// geolocates to a stable country, but its origin AS does not
    /// plausibly announce addresses there — the geolocation is likely an
    /// artifact of a hijacked more-specific prefix.
    #[serde(default, skip_serializing_if = "serde::__is_default")]
    pub geo_implausible: bool,
}

/// Shortlisting thresholds and ablation switches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShortlistConfig {
    /// Minimum fraction of period scans the domain must appear in.
    pub min_visibility: f64,
    /// Transients in this many consecutive periods ⇒ prune.
    pub repeat_periods: usize,
    /// Ablation: skip the organizational-relatedness check.
    pub disable_org_check: bool,
    /// Ablation: skip the geolocation check.
    pub disable_geo_check: bool,
    /// Ablation: skip the visibility check.
    pub disable_visibility_check: bool,
    /// Ablation: skip the repeated-transients check.
    pub disable_repeat_check: bool,
    /// Ablation: skip the sensitive-name requirement (keep everything).
    pub disable_sensitive_filter: bool,
    /// Cross-period recurrence signal (slow-burn campaigns): a run of
    /// similar transients that would be pruned as `RepeatedTransients`
    /// is *kept* when the recurring transient presents a browser-trusted
    /// certificate for a sensitive name the stable background never
    /// used. Off by default (additive; preserves baseline reports).
    #[serde(default)]
    pub recurrence_signal: bool,
    /// Geo-implausibility signal (BGP-assisted hijacks): before pruning
    /// `SameCountry`, check whether the transient's origin AS plausibly
    /// announces addresses in the shared country; if not, the candidate
    /// is kept and annotated instead. Off by default.
    #[serde(default)]
    pub geo_implausibility_check: bool,
}

impl Default for ShortlistConfig {
    fn default() -> Self {
        ShortlistConfig {
            min_visibility: 0.8,
            repeat_periods: 3,
            disable_org_check: false,
            disable_geo_check: false,
            disable_visibility_check: false,
            disable_repeat_check: false,
            disable_sensitive_filter: false,
            recurrence_signal: false,
            geo_implausibility_check: false,
        }
    }
}

/// The shortlist result: survivors plus a full prune audit trail.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShortlistOutcome {
    /// Candidates that survived all heuristics.
    pub candidates: Vec<Candidate>,
    /// Pruned (domain, period, reason) triples.
    pub pruned: Vec<(DomainName, Period, PruneReason)>,
}

impl ShortlistOutcome {
    /// Histogram of prune reasons.
    pub fn prune_histogram(&self) -> HashMap<PruneReason, usize> {
        let mut h = HashMap::new();
        for (_, _, r) in &self.pruned {
            *h.entry(*r).or_insert(0) += 1;
        }
        h
    }
}

/// Run the shortlist heuristics over classified maps. `patterns` is
/// parallel to `maps`. The as2org lookups run unguarded (no faults, no
/// budget); the pipeline uses [`shortlist_guarded`] instead.
pub fn shortlist(
    maps: &[DeploymentMap],
    patterns: &[Pattern],
    asdb: &AsDatabase,
    certs: &HashMap<CertId, Certificate>,
    cfg: &ShortlistConfig,
) -> ShortlistOutcome {
    let mut as2org = ResilientSource::new(asdb, SourcePolicy::default(), None);
    shortlist_guarded(maps, patterns, &mut as2org, certs, cfg)
}

/// [`shortlist`] with the as2org relatedness oracle behind a
/// [`ResilientSource`]. When the oracle stays unavailable past its
/// retry budget for a finding, the candidate is *kept* (we cannot
/// prove it benign) with the source recorded in
/// [`Candidate::degraded_sources`], and the remaining prune heuristics
/// are skipped — every exhausted as2org call surfaces as exactly one
/// degraded verdict downstream, never as a silent prune.
pub fn shortlist_guarded(
    maps: &[DeploymentMap],
    patterns: &[Pattern],
    as2org: &mut ResilientSource<AsDatabase>,
    certs: &HashMap<CertId, Certificate>,
    cfg: &ShortlistConfig,
) -> ShortlistOutcome {
    assert_eq!(maps.len(), patterns.len(), "patterns must parallel maps");
    // Per-domain period → (category, transient ASNs) index for the
    // repeat / truly-anomalous cross-period checks. Only transient maps
    // ever consult the index (and only for their own domain), and maps
    // arrive sorted by (domain, period) so a domain's periods are
    // adjacent — the index is built per contiguous domain run, and only
    // for runs carrying at least one transient map. Non-transient
    // domains (the vast majority) cost one adjacent string comparison.
    struct PeriodClass {
        category: &'static str,
        /// ASNs of the transient deployments in this period's map
        /// (empty unless the period classified transient).
        transient_asns: BTreeSet<Asn>,
    }
    const UNINDEXED: usize = usize::MAX;
    let mut ids: Vec<usize> = vec![UNINDEXED; maps.len()];
    let mut by_domain: Vec<HashMap<PeriodId, PeriodClass>> = Vec::new();
    let mut start = 0;
    while start < maps.len() {
        let domain = &maps[start].domain;
        let mut end = start + 1;
        while end < maps.len() && maps[end].domain == *domain {
            end += 1;
        }
        if patterns[start..end]
            .iter()
            .any(|p| matches!(p, Pattern::Transient { .. }))
        {
            let id = by_domain.len();
            let mut periods = HashMap::with_capacity(end - start);
            for (m, p) in maps[start..end].iter().zip(&patterns[start..end]) {
                let transient_asns = match p {
                    Pattern::Transient { findings, .. } => findings
                        .iter()
                        .map(|f| m.deployments[f.deployment].asn)
                        .collect(),
                    _ => BTreeSet::new(),
                };
                periods.insert(
                    m.period.id,
                    PeriodClass {
                        category: p.category(),
                        transient_asns,
                    },
                );
            }
            by_domain.push(periods);
            ids[start..end].fill(id);
        }
        start = end;
    }

    // §4.3 prunes on *similar* transients across consecutive periods:
    // adjacent transient periods extend the run only when they share a
    // transient ASN (a recurring benign visitor), not merely because
    // both happened to classify transient. Two unrelated transients in
    // adjacent periods are two separate one-period runs.
    let consecutive_transients = |domain: usize, pid: PeriodId| -> usize {
        let periods = &by_domain[domain];
        let similar = |a: PeriodId, b: PeriodId| -> bool {
            match (periods.get(&a), periods.get(&b)) {
                (Some(x), Some(y)) => {
                    x.category == "transient"
                        && y.category == "transient"
                        && x.transient_asns
                            .intersection(&y.transient_asns)
                            .next()
                            .is_some()
                }
                _ => false,
            }
        };
        let mut run = 1;
        let mut i = pid;
        while i > 0 && similar(i - 1, i) {
            run += 1;
            i -= 1;
        }
        let mut i = pid;
        while similar(i, i + 1) {
            run += 1;
            i += 1;
        }
        run
    };

    let mut out = ShortlistOutcome::default();

    for ((m, p), &domain_id) in maps.iter().zip(patterns).zip(&ids) {
        let Pattern::Transient {
            findings,
            background,
        } = p
        else {
            continue;
        };

        // Map-level checks first (visibility, repetition).
        if !cfg.disable_visibility_check && m.visibility() < cfg.min_visibility {
            out.pruned
                .push((m.domain.clone(), m.period, PruneReason::LowVisibility));
            continue;
        }
        let mut recurrent_periods = 0usize;
        if !cfg.disable_repeat_check {
            let run = consecutive_transients(domain_id, m.period.id);
            if run >= cfg.repeat_periods {
                // Cross-period recurrence signal: a slow-burn attacker
                // *deliberately* recurs under the transient threshold.
                // Keep the run (annotated) when the recurring transient
                // presents a browser-trusted certificate for a sensitive
                // name that the stable background never used; benign
                // repeat visitors don't hold such certificates.
                let suspicious_recurrence = cfg.recurrence_signal
                    && findings.iter().any(|f| {
                        let d = &m.deployments[f.deployment];
                        d.trusted_certs.iter().any(|id| {
                            !background.certs.contains(id)
                                && certs
                                    .get(id)
                                    .map(|c| !c.sensitive_names().is_empty())
                                    .unwrap_or(false)
                        })
                    });
                if suspicious_recurrence {
                    recurrent_periods = run;
                } else {
                    out.pruned
                        .push((m.domain.clone(), m.period, PruneReason::RepeatedTransients));
                    continue;
                }
            }
        }

        // Truly anomalous: a single transient finding, with fully stable
        // periods before and after. Edge periods don't qualify.
        let neighbors = &by_domain[domain_id];
        let stable_at = |id: PeriodId| neighbors.get(&id).map(|c| c.category) == Some("stable");
        let truly_anomalous = findings.len() == 1
            && m.period.id > 0
            && stable_at(m.period.id - 1)
            && stable_at(m.period.id + 1);

        let mut kept_any = false;
        let mut last_prune: Option<PruneReason> = None;
        for finding in findings {
            let transient = &m.deployments[finding.deployment];
            let mut degraded_sources: Vec<String> = Vec::new();

            if !cfg.disable_org_check {
                let key =
                    query_key(&[m.domain.as_str().as_bytes(), &transient.asn.0.to_le_bytes()]);
                match as2org.call(key, |db| {
                    background
                        .asns
                        .iter()
                        .any(|stable_asn| db.related_asns(transient.asn, *stable_asn))
                }) {
                    Ok(true) => {
                        last_prune = Some(PruneReason::RelatedOrg);
                        continue;
                    }
                    Ok(false) => {}
                    // Oracle unavailable: keep the candidate, degraded,
                    // and skip the remaining prunes (we cannot prove it
                    // benign without the evidence we just lost).
                    Err(_) => degraded_sources.push(as2org.guard().name().to_string()),
                }
            }
            let mut geo_implausible = false;
            if degraded_sources.is_empty() && !cfg.disable_geo_check {
                let shared: Vec<CountryCode> = transient
                    .countries
                    .iter()
                    .filter(|cc| background.countries.contains(*cc))
                    .copied()
                    .collect();
                if !shared.is_empty() {
                    if cfg.geo_implausibility_check {
                        // BGP-assisted hijacks geolocate *into* the
                        // victim's country by stealing a more-specific
                        // prefix there. Before pruning, ask whether the
                        // transient's origin AS plausibly announces
                        // addresses in the shared countries at all; if
                        // not, keep the candidate annotated instead.
                        let key = query_key(&[
                            m.domain.as_str().as_bytes(),
                            &transient.asn.0.to_le_bytes(),
                            b"geo-plausibility",
                        ]);
                        match as2org.call(key, |db| {
                            shared
                                .iter()
                                .all(|cc| !db.plausible_origin(transient.asn, *cc))
                        }) {
                            Ok(true) => geo_implausible = true,
                            Ok(false) => {
                                last_prune = Some(PruneReason::SameCountry);
                                continue;
                            }
                            Err(_) => degraded_sources.push(as2org.guard().name().to_string()),
                        }
                    } else {
                        last_prune = Some(PruneReason::SameCountry);
                        continue;
                    }
                }
            }

            // Sensitive trusted certificate, or truly anomalous.
            let sensitive_names: Vec<DomainName> = transient
                .trusted_certs
                .iter()
                .filter_map(|id| certs.get(id))
                .flat_map(|c| c.sensitive_names().into_iter().cloned())
                .collect();
            let sensitive_ok = !sensitive_names.is_empty();
            if degraded_sources.is_empty()
                && !cfg.disable_sensitive_filter
                && !sensitive_ok
                && !truly_anomalous
            {
                last_prune = Some(PruneReason::NotSensitiveNotAnomalous);
                continue;
            }

            kept_any = true;
            // Multiple guards can degrade while judging one candidate;
            // canonicalize so the report never depends on guard order.
            degraded_sources.sort();
            degraded_sources.dedup();
            out.candidates.push(Candidate {
                domain: m.domain.clone(),
                period: m.period,
                finding: finding.clone(),
                transient: transient.clone(),
                background: background.clone(),
                truly_anomalous,
                via_anomalous_route: truly_anomalous && !sensitive_ok,
                sensitive_names,
                degraded_sources,
                recurrent_periods,
                geo_implausible,
            });
        }
        if !kept_any {
            if let Some(reason) = last_prune {
                out.pruned.push((m.domain.clone(), m.period, reason));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ClassifyConfig};
    use crate::map::MapBuilder;
    use retrodns_asdb::{GeoTableBuilder, OrgId, OrgTableBuilder, PrefixTableBuilder};
    use retrodns_cert::{authority::CaId, KeyId};
    use retrodns_scan::DomainObservation;
    use retrodns_types::{Asn, Day, Ipv4Addr, StudyWindow};

    fn obs(domain: &str, week: u32, ip: u32, asn: u32, cc: &str, cert: u64) -> DomainObservation {
        DomainObservation {
            domain: domain.parse().unwrap(),
            date: Day(week * 7),
            ip: Ipv4Addr(ip),
            asn: Some(Asn(asn)),
            country: cc.parse().ok(),
            cert: CertId(cert),
            trusted: true,
        }
    }

    fn asdb() -> AsDatabase {
        let mut o = OrgTableBuilder::new();
        o.insert(Asn(100), OrgId(1), "Victim Hosting");
        o.insert(Asn(200), OrgId(2), "Attacker VPS");
        o.insert(Asn(201), OrgId(2), "Attacker VPS"); // sibling of 200
        AsDatabase {
            prefixes: PrefixTableBuilder::new().build(),
            orgs: o.build(),
            geo: GeoTableBuilder::new().build(),
        }
    }

    fn certs() -> HashMap<CertId, Certificate> {
        let mut m = HashMap::new();
        m.insert(
            CertId(1),
            Certificate::new(
                CertId(1),
                vec!["www.victim.gr".parse().unwrap()],
                CaId(1),
                Day(0),
                800,
                KeyId(1),
            ),
        );
        m.insert(
            CertId(666),
            Certificate::new(
                CertId(666),
                vec!["mail.victim.gr".parse().unwrap()],
                CaId(1),
                Day(80),
                90,
                KeyId(9),
            ),
        );
        m.insert(
            CertId(777),
            Certificate::new(
                CertId(777),
                vec!["www.victim.gr".parse().unwrap()],
                CaId(1),
                Day(80),
                90,
                KeyId(9),
            ),
        );
        m
    }

    /// Stable GR background + one-scan transient with cert `cert` from
    /// (asn, cc).
    fn world(asn: u32, cc: &str, cert: u64) -> (Vec<DeploymentMap>, Vec<Pattern>) {
        let mut o: Vec<DomainObservation> = (0..26)
            .map(|i| obs("victim.gr", i, 1, 100, "GR", 1))
            .collect();
        o.push(obs("victim.gr", 12, 99, asn, cc, cert));
        let maps = MapBuilder::new(StudyWindow::default()).build(&o);
        let patterns: Vec<Pattern> = maps
            .iter()
            .map(|m| classify(m, &ClassifyConfig::default()))
            .collect();
        (maps, patterns)
    }

    #[test]
    fn sensitive_foreign_transient_survives() {
        let (maps, patterns) = world(200, "NL", 666);
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert_eq!(out.candidates.len(), 1);
        let c = &out.candidates[0];
        assert_eq!(c.transient.asn, Asn(200));
        assert!(!c.truly_anomalous);
        assert_eq!(
            c.sensitive_names,
            vec!["mail.victim.gr".parse::<DomainName>().unwrap()]
        );
    }

    #[test]
    fn related_org_pruned() {
        // Stable on AS200 (org 2); transient in sibling AS201 (same org).
        let mut o: Vec<DomainObservation> = (0..26)
            .map(|i| obs("victim.gr", i, 1, 200, "GR", 1))
            .collect();
        o.push(obs("victim.gr", 12, 99, 201, "NL", 666));
        let maps = MapBuilder::new(StudyWindow::default()).build(&o);
        let patterns: Vec<Pattern> = maps
            .iter()
            .map(|m| classify(m, &ClassifyConfig::default()))
            .collect();
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert!(out.candidates.is_empty());
        assert_eq!(out.pruned[0].2, PruneReason::RelatedOrg);
        // Ablation: disabling the check lets it through.
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig {
                disable_org_check: true,
                ..Default::default()
            },
        );
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn same_country_pruned() {
        let (maps, patterns) = world(200, "GR", 666);
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert!(out.candidates.is_empty());
        assert_eq!(out.pruned[0].2, PruneReason::SameCountry);
    }

    #[test]
    fn low_visibility_pruned() {
        // Background present in only half the scans.
        let mut o: Vec<DomainObservation> = (0..26)
            .step_by(2)
            .map(|i| obs("victim.gr", i, 1, 100, "GR", 1))
            .collect();
        o.push(obs("victim.gr", 12, 99, 200, "NL", 666));
        let maps = MapBuilder::new(StudyWindow::default()).build(&o);
        let patterns: Vec<Pattern> = maps
            .iter()
            .map(|m| classify(m, &ClassifyConfig::default()))
            .collect();
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        // Either the map fragmented (no transient classified) or it was
        // pruned for visibility; it must not survive.
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn repeated_transients_pruned() {
        // The same foreign one-scan transient in periods 1, 2, 3.
        let mut o: Vec<DomainObservation> = (0..26 * 4)
            .map(|i| obs("victim.gr", i, 1, 100, "GR", 1))
            .collect();
        for p in 1..4u32 {
            o.push(obs("victim.gr", 26 * p + 10, 99, 200, "NL", 666));
        }
        let maps = MapBuilder::new(StudyWindow::default()).build(&o);
        let patterns: Vec<Pattern> = maps
            .iter()
            .map(|m| classify(m, &ClassifyConfig::default()))
            .collect();
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert!(out.candidates.is_empty());
        assert!(out
            .pruned
            .iter()
            .all(|(_, _, r)| *r == PruneReason::RepeatedTransients));
        assert_eq!(out.pruned.len(), 3);
    }

    /// Regression: the repeat check used to count *any*
    /// transient-classified period as a repeat; §4.3 prunes on *similar*
    /// transients (same transient ASN recurring). Three adjacent periods
    /// with three unrelated transient ASNs are three independent
    /// anomalies, not one repeated benign visitor — none may be pruned
    /// as `RepeatedTransients`.
    #[test]
    fn unrelated_adjacent_transients_are_not_repeats() {
        let mut o: Vec<DomainObservation> = (0..26 * 4)
            .map(|i| obs("victim.gr", i, 1, 100, "GR", 1))
            .collect();
        // Periods 1, 2, 3: one-scan transients from three unrelated
        // foreign ASNs (no shared org, none in the asdb org table).
        for (p, asn) in [(1u32, 300u32), (2, 400), (3, 500)] {
            o.push(obs("victim.gr", 26 * p + 10, 99, asn, "NL", 666));
        }
        let maps = MapBuilder::new(StudyWindow::default()).build(&o);
        let patterns: Vec<Pattern> = maps
            .iter()
            .map(|m| classify(m, &ClassifyConfig::default()))
            .collect();
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert!(
            !out.pruned
                .iter()
                .any(|(_, _, r)| *r == PruneReason::RepeatedTransients),
            "unrelated adjacent transients pruned as repeats: {:?}",
            out.pruned
        );
        assert_eq!(
            out.candidates.len(),
            3,
            "all three unrelated transients should survive the shortlist"
        );
        let asns: Vec<Asn> = out.candidates.iter().map(|c| c.transient.asn).collect();
        assert_eq!(asns, vec![Asn(300), Asn(400), Asn(500)]);
    }

    #[test]
    fn non_sensitive_pruned_unless_truly_anomalous() {
        // Transient cert 777 secures only www (not sensitive); single
        // period of data means it cannot be truly anomalous → pruned.
        let (maps, patterns) = world(200, "NL", 777);
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert!(out.candidates.is_empty());
        assert_eq!(out.pruned[0].2, PruneReason::NotSensitiveNotAnomalous);

        // Give it stable periods before and after → truly anomalous.
        let mut o: Vec<DomainObservation> = (0..26 * 3)
            .map(|i| obs("victim.gr", i, 1, 100, "GR", 1))
            .collect();
        o.push(obs("victim.gr", 26 + 12, 99, 200, "NL", 777));
        let maps = MapBuilder::new(StudyWindow::default()).build(&o);
        let patterns: Vec<Pattern> = maps
            .iter()
            .map(|m| classify(m, &ClassifyConfig::default()))
            .collect();
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        assert_eq!(out.candidates.len(), 1);
        assert!(out.candidates[0].truly_anomalous);
        assert!(out.candidates[0].via_anomalous_route);
    }

    #[test]
    fn prune_histogram_counts() {
        let (maps, patterns) = world(200, "GR", 666);
        let out = shortlist(
            &maps,
            &patterns,
            &asdb(),
            &certs(),
            &ShortlistConfig::default(),
        );
        let h = out.prune_histogram();
        assert_eq!(h.get(&PruneReason::SameCountry), Some(&1));
    }
}
