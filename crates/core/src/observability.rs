//! §5.3 observability statistics.
//!
//! How visible are these attacks in each data source?
//!
//! * pDNS captures the *attack itself* (resolutions to malicious
//!   infrastructure) for at most one day for ~51 % of hijacked domains;
//! * the malicious certificate appears in a scan within 8 days of
//!   issuance for >50 % of domains, and in only **one** weekly scan for
//!   >50 % (two scans for another ~20 %);
//! * daily zone files almost never catch the delegation flip.
//!
//! The module also hosts the *operational* observability of the pipeline
//! itself: [`StageTiming`] / [`PipelineTimings`] record per-stage
//! wall time and throughput so `Pipeline::run` can report where a run
//! spent its time (and how much the `workers` knob bought).

use crate::inspect::DetectedHijack;
use retrodns_dns::{PassiveDns, RecordType, ZoneSnapshotArchive};
use retrodns_scan::ScanDataset;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// Wall time and item count of one pipeline stage.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StageTiming {
    /// Wall-clock milliseconds spent in the stage.
    pub wall_ms: f64,
    /// Items the stage processed (stage-specific unit: observations for
    /// map building, maps for classification, candidates for inspection,
    /// hijacks for pivoting).
    pub items: usize,
}

impl StageTiming {
    /// Record an elapsed duration over `items` items.
    pub fn from_elapsed(elapsed: Duration, items: usize) -> StageTiming {
        StageTiming {
            wall_ms: elapsed.as_secs_f64() * 1e3,
            items,
        }
    }

    /// Items per second (0 when no meaningful time was observed).
    ///
    /// Stages over tiny inputs can finish in well under a millisecond;
    /// dividing by a near-zero (or zero) wall time would report absurd
    /// or non-finite throughput. Below one microsecond of wall time the
    /// rate is reported as 0 instead, and any non-finite result of the
    /// division is clamped to 0 as a belt-and-braces guard.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.wall_ms >= 1e-3 {
            let rate = self.items as f64 / (self.wall_ms / 1e3);
            if rate.is_finite() {
                rate
            } else {
                0.0
            }
        } else {
            // Covers zero, sub-microsecond, negative, and NaN wall times.
            0.0
        }
    }
}

/// Per-stage timing breakdown of one `Pipeline::run`.
///
/// Excluded from report serialization (`#[serde(skip)]` on the `Report`
/// field) so report JSON stays byte-identical across worker counts and
/// machines; consumers read it off the in-memory `Report`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineTimings {
    /// Stage 1: deployment-map building over scan observations.
    pub map_build: StageTiming,
    /// Stage 2: pattern classification over maps.
    pub classify: StageTiming,
    /// Stage 3: shortlist heuristics over classified maps.
    pub shortlist: StageTiming,
    /// Stage 4: candidate inspection (pDNS/CT corroboration).
    pub inspect: StageTiming,
    /// Stage 5: pivot expansion over confirmed hijacks.
    pub pivot: StageTiming,
    /// End-to-end wall milliseconds, including funnel accounting, the T1*
    /// pass and dedup (≥ the sum of the stages).
    pub total_ms: f64,
}

impl PipelineTimings {
    /// The five stages in pipeline order, with display labels.
    pub fn stages(&self) -> [(&'static str, StageTiming); 5] {
        [
            ("map_build", self.map_build),
            ("classify", self.classify),
            ("shortlist", self.shortlist),
            ("inspect", self.inspect),
            ("pivot", self.pivot),
        ]
    }

    /// Multi-line human-readable breakdown.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, t) in self.stages() {
            let _ = writeln!(
                out,
                "{name:<10} {:>9.2} ms  {:>8} items  {:>12.0} items/s",
                t.wall_ms,
                t.items,
                t.throughput_per_sec()
            );
        }
        let _ = writeln!(out, "{:<10} {:>9.2} ms", "total", self.total_ms);
        out
    }
}

/// The §5.3 statistics over a set of detected hijacks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObservabilityStats {
    /// Hijacks with any pDNS attack evidence (A records to attacker IPs).
    pub with_pdns_attack_evidence: usize,
    /// Of those, how many had at most one day of visibility.
    pub pdns_at_most_one_day: usize,
    /// Per-hijack pDNS attack-evidence visibility in days.
    pub pdns_visibility_days: Vec<u32>,
    /// Hijacks whose malicious certificate appeared in any scan.
    pub cert_scanned: usize,
    /// Of those, how many appeared within 8 days of issuance (lag in
    /// `0..=8`; certs first scanned *before* their recorded issuance
    /// are excluded and counted in `cert_scan_before_issuance`).
    pub cert_scanned_within_8_days: usize,
    /// Certs whose first scan sighting predates their recorded
    /// issuance day (CT backdating / clock skew) — anomalous, and
    /// never silently clamped into the within-8-days count.
    pub cert_scan_before_issuance: usize,
    /// Per-hijack (issuance → first scan) lag in days, signed:
    /// negative when the first scan sighting predates issuance.
    pub cert_scan_lag_days: Vec<i64>,
    /// Histogram of how many scans the malicious cert appeared in
    /// (index 0 = one scan, 1 = two scans, …). The **last** bucket is
    /// an *overflow* bucket: it counts certs seen in `len()` **or
    /// more** scans, not exactly `len()` — see
    /// [`frac_cert_in_at_least_n_scans`](Self::frac_cert_in_at_least_n_scans).
    pub cert_scan_count_histogram: Vec<usize>,
    /// Hijacked domains with zone-file access.
    pub zone_accessible: usize,
    /// Of those, how many show the rogue delegation in any daily snapshot.
    pub zone_visible: usize,
}

impl ObservabilityStats {
    /// Fraction of pDNS-evidenced hijacks visible at most one day.
    pub fn frac_pdns_one_day(&self) -> f64 {
        if self.with_pdns_attack_evidence == 0 {
            return 0.0;
        }
        self.pdns_at_most_one_day as f64 / self.with_pdns_attack_evidence as f64
    }

    /// Fraction of scanned malicious certs seen within 8 days of issuance.
    pub fn frac_cert_within_8_days(&self) -> f64 {
        if self.cert_scanned == 0 {
            return 0.0;
        }
        self.cert_scanned_within_8_days as f64 / self.cert_scanned as f64
    }

    /// Fraction of scanned malicious certs appearing in exactly `n` scans
    /// (1-based). Exact counts exist only below the histogram's overflow
    /// bucket, so `n` must be less than the histogram length; for the
    /// overflow bucket ("`len()` or more scans") use
    /// [`frac_cert_in_at_least_n_scans`](Self::frac_cert_in_at_least_n_scans)
    /// — asking for an exact count there returns 0.
    pub fn frac_cert_in_n_scans(&self, n: usize) -> f64 {
        if self.cert_scanned == 0 || n == 0 || n >= self.cert_scan_count_histogram.len() {
            return 0.0;
        }
        self.cert_scan_count_histogram[n - 1] as f64 / self.cert_scanned as f64
    }

    /// Fraction of scanned malicious certs appearing in at least `n`
    /// scans (1-based). Well-defined for every `n` up to and including
    /// the overflow bucket (`n == histogram.len()` means "`n` or more").
    pub fn frac_cert_in_at_least_n_scans(&self, n: usize) -> f64 {
        if self.cert_scanned == 0 || n == 0 || n > self.cert_scan_count_histogram.len() {
            return 0.0;
        }
        let tail: usize = self.cert_scan_count_histogram[n - 1..].iter().sum();
        tail as f64 / self.cert_scanned as f64
    }
}

/// Compute the observability statistics for detected hijacks.
pub fn observability(
    hijacks: &[DetectedHijack],
    pdns: &PassiveDns,
    scans: &ScanDataset,
    zones: &ZoneSnapshotArchive,
    crtsh: &retrodns_cert::CrtShIndex,
) -> ObservabilityStats {
    let mut stats = ObservabilityStats {
        cert_scan_count_histogram: vec![0; 6],
        ..Default::default()
    };

    for h in hijacks {
        // --- pDNS attack-evidence visibility -------------------------
        let mut best: Option<u32> = None;
        for e in pdns.entries_under(&h.domain) {
            if e.rtype != RecordType::A {
                continue;
            }
            let Some(ip) = e.rdata.as_a() else { continue };
            if h.attacker_ips.contains(&ip) {
                let v = e.visibility_days();
                best = Some(best.map(|b| b.max(v)).unwrap_or(v));
            }
        }
        if let Some(days) = best {
            stats.with_pdns_attack_evidence += 1;
            stats.pdns_visibility_days.push(days);
            if days <= 1 {
                stats.pdns_at_most_one_day += 1;
            }
        }

        // --- malicious certificate in scans ---------------------------
        if let Some(cert) = h.malicious_cert {
            let mut dates: Vec<_> = scans
                .records()
                .iter()
                .filter(|r| r.cert == cert)
                .map(|r| r.date)
                .collect();
            dates.sort();
            dates.dedup();
            if let Some(first) = dates.first() {
                stats.cert_scanned += 1;
                let issued = crtsh.record(cert).map(|r| r.issued).unwrap_or(*first);
                // Signed lag: a cert whose recorded issuance postdates its
                // first scan sighting (CT backdating, clock skew) must not
                // be clamped to lag 0 — that would silently inflate the
                // within-8-days count.
                let lag = first.0 as i64 - issued.0 as i64;
                stats.cert_scan_lag_days.push(lag);
                if lag < 0 {
                    stats.cert_scan_before_issuance += 1;
                } else if lag <= 8 {
                    stats.cert_scanned_within_8_days += 1;
                }
                let bucket = (dates.len() - 1).min(stats.cert_scan_count_histogram.len() - 1);
                stats.cert_scan_count_histogram[bucket] += 1;
            }
        }

        // --- zone-file visibility --------------------------------------
        if zones.has_access(&h.domain) {
            stats.zone_accessible += 1;
            let visible = h
                .attacker_ns
                .iter()
                .any(|ns| !zones.days_with_nameserver(&h.domain, ns).is_empty());
            if visible {
                stats.zone_visible += 1;
            }
        }
    }

    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::DetectionType;
    use retrodns_cert::authority::CaId;
    use retrodns_cert::{CertId, Certificate, CrtShIndex, CtLog, KeyId};
    use retrodns_dns::RecordData;
    use retrodns_scan::{ScanDataset, ScanRecord};
    use retrodns_types::{Day, DomainName, Ipv4Addr};

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn hijack(cert: Option<u64>) -> DetectedHijack {
        DetectedHijack {
            domain: d("victim.com"),
            dtype: DetectionType::T1,
            sub: Some(d("mail.victim.com")),
            first_evidence: Day(100),
            pdns_corroborated: true,
            ct_corroborated: true,
            dnssec_corroborated: false,
            malicious_cert: cert.map(CertId),
            attacker_ips: vec![ip("6.6.6.6")],
            attacker_asn: None,
            attacker_cc: None,
            attacker_ns: vec![d("ns1.evil.ru")],
            victim_asns: vec![],
            victim_ccs: vec![],
            geo_implausible: false,
        }
    }

    #[test]
    fn stats_cover_all_three_sources() {
        let mut pdns = PassiveDns::new();
        pdns.insert_aggregate(
            &d("mail.victim.com"),
            RecordData::A(ip("6.6.6.6")),
            Day(100),
            Day(100),
            1,
        );

        let scans = ScanDataset::from_records(vec![ScanRecord {
            date: Day(105),
            ip: ip("6.6.6.6"),
            port: 443,
            cert: CertId(666),
        }]);

        let mut log = CtLog::new();
        log.submit(
            Certificate::new(
                CertId(666),
                vec![d("mail.victim.com")],
                CaId(1),
                Day(100),
                90,
                KeyId(1),
            ),
            Day(100),
        );
        let crtsh = CrtShIndex::build(&log);

        let mut zones = ZoneSnapshotArchive::with_access(vec!["com".into()]);
        zones.record_span(Day(0), Day(99), &d("victim.com"), &[d("ns1.legit.com")]);
        zones.record(Day(100), &d("victim.com"), &[d("ns1.evil.ru")]);

        let stats = observability(&[hijack(Some(666))], &pdns, &scans, &zones, &crtsh);
        assert_eq!(stats.with_pdns_attack_evidence, 1);
        assert_eq!(stats.pdns_at_most_one_day, 1);
        assert!((stats.frac_pdns_one_day() - 1.0).abs() < 1e-9);
        assert_eq!(stats.cert_scanned, 1);
        assert_eq!(stats.cert_scan_lag_days, vec![5]);
        assert_eq!(stats.cert_scanned_within_8_days, 1);
        assert!((stats.frac_cert_in_n_scans(1) - 1.0).abs() < 1e-9);
        assert_eq!(stats.zone_accessible, 1);
        assert_eq!(stats.zone_visible, 1);
    }

    #[test]
    fn invisible_hijack_counts_nothing() {
        let stats = observability(
            &[hijack(None)],
            &PassiveDns::new(),
            &ScanDataset::default(),
            &ZoneSnapshotArchive::with_access(vec!["kg".into()]),
            &CrtShIndex::default(),
        );
        assert_eq!(stats.with_pdns_attack_evidence, 0);
        assert_eq!(stats.cert_scanned, 0);
        assert_eq!(stats.zone_accessible, 0);
        assert_eq!(stats.frac_pdns_one_day(), 0.0);
        assert_eq!(stats.frac_cert_in_n_scans(1), 0.0);
    }

    #[test]
    fn stage_timing_throughput() {
        let t = StageTiming::from_elapsed(std::time::Duration::from_millis(500), 1000);
        assert!((t.wall_ms - 500.0).abs() < 1e-6);
        assert!((t.throughput_per_sec() - 2000.0).abs() < 1e-6);
        assert_eq!(StageTiming::default().throughput_per_sec(), 0.0);
    }

    /// Regression: a stage finishing in under a microsecond used to
    /// divide by a near-zero wall time and report absurd (potentially
    /// non-finite) throughput. Sub-microsecond timings now report 0 and
    /// the result is always finite.
    #[test]
    fn sub_millisecond_timing_reports_finite_throughput() {
        let nano = StageTiming::from_elapsed(std::time::Duration::from_nanos(1), 1_000_000);
        assert_eq!(nano.throughput_per_sec(), 0.0);

        let zero = StageTiming {
            wall_ms: 0.0,
            items: 42,
        };
        assert_eq!(zero.throughput_per_sec(), 0.0);

        let nan = StageTiming {
            wall_ms: f64::NAN,
            items: 42,
        };
        assert_eq!(nan.throughput_per_sec(), 0.0);

        // One microsecond is the floor: still finite, never inf/NaN.
        let micro = StageTiming {
            wall_ms: 1e-3,
            items: 7,
        };
        assert!(micro.throughput_per_sec().is_finite());
        assert!((micro.throughput_per_sec() - 7_000_000.0).abs() < 1e-3);
        let summary_user = PipelineTimings {
            inspect: nano,
            ..PipelineTimings::default()
        };
        assert!(!summary_user.summary().contains("inf"));
        assert!(!summary_user.summary().contains("NaN"));
    }

    #[test]
    fn timings_summary_lists_all_stages() {
        let t = PipelineTimings {
            map_build: StageTiming::from_elapsed(std::time::Duration::from_millis(12), 34),
            total_ms: 15.0,
            ..PipelineTimings::default()
        };
        let s = t.summary();
        for stage in [
            "map_build",
            "classify",
            "shortlist",
            "inspect",
            "pivot",
            "total",
        ] {
            assert!(s.contains(stage), "summary missing {stage}: {s}");
        }
    }

    /// Regression: a certificate whose recorded issuance *postdates* its
    /// first scan sighting (CT backdating / clock skew) used to clamp to
    /// lag 0 and silently inflate `cert_scanned_within_8_days`. The true
    /// signed lag must be recorded and the cert counted separately.
    #[test]
    fn backdated_cert_is_not_counted_within_8_days() {
        let scans = ScanDataset::from_records(vec![ScanRecord {
            date: Day(105),
            ip: ip("6.6.6.6"),
            port: 443,
            cert: CertId(666),
        }]);
        let mut log = CtLog::new();
        log.submit(
            Certificate::new(
                CertId(666),
                vec![d("mail.victim.com")],
                CaId(1),
                Day(110), // issued five days *after* the scan sighting
                90,
                KeyId(1),
            ),
            Day(110),
        );
        let crtsh = CrtShIndex::build(&log);
        let stats = observability(
            &[hijack(Some(666))],
            &PassiveDns::new(),
            &scans,
            &ZoneSnapshotArchive::with_access(Vec::<String>::new()),
            &crtsh,
        );
        assert_eq!(stats.cert_scanned, 1);
        assert_eq!(stats.cert_scan_lag_days, vec![-5]);
        assert_eq!(
            stats.cert_scanned_within_8_days, 0,
            "backdated cert clamped into the within-8-days count"
        );
        assert_eq!(stats.cert_scan_before_issuance, 1);
        assert_eq!(stats.frac_cert_within_8_days(), 0.0);
    }

    /// Regression: the last histogram bucket is an overflow bucket ("6+
    /// scans"); `frac_cert_in_n_scans(6)` used to report it as "exactly
    /// 6". Exact fractions stop below the overflow bucket; the overflow
    /// mass is exposed via `frac_cert_in_at_least_n_scans`.
    #[test]
    fn overflow_bucket_is_at_least_not_exactly() {
        // Cert seen in 7 distinct scans: lands in the overflow bucket.
        let scans = ScanDataset::from_records(
            (0..7)
                .map(|i| ScanRecord {
                    date: Day(100 + i * 7),
                    ip: ip("6.6.6.6"),
                    port: 443,
                    cert: CertId(666),
                })
                .collect(),
        );
        let mut log = CtLog::new();
        log.submit(
            Certificate::new(
                CertId(666),
                vec![d("mail.victim.com")],
                CaId(1),
                Day(99),
                90,
                KeyId(1),
            ),
            Day(99),
        );
        let crtsh = CrtShIndex::build(&log);
        let stats = observability(
            &[hijack(Some(666))],
            &PassiveDns::new(),
            &scans,
            &ZoneSnapshotArchive::with_access(Vec::<String>::new()),
            &crtsh,
        );
        let overflow = stats.cert_scan_count_histogram.len(); // 6
        assert_eq!(stats.cert_scan_count_histogram[overflow - 1], 1);
        assert_eq!(
            stats.frac_cert_in_n_scans(overflow),
            0.0,
            "overflow bucket reported as an exact scan count"
        );
        assert!((stats.frac_cert_in_at_least_n_scans(overflow) - 1.0).abs() < 1e-9);
        assert!((stats.frac_cert_in_at_least_n_scans(1) - 1.0).abs() < 1e-9);
        assert_eq!(stats.frac_cert_in_at_least_n_scans(overflow + 1), 0.0);
    }

    #[test]
    fn multi_scan_cert_lands_in_right_bucket() {
        let scans = ScanDataset::from_records(
            (0..3)
                .map(|i| ScanRecord {
                    date: Day(100 + i * 7),
                    ip: ip("6.6.6.6"),
                    port: 443,
                    cert: CertId(666),
                })
                .collect(),
        );
        let mut log = CtLog::new();
        log.submit(
            Certificate::new(
                CertId(666),
                vec![d("mail.victim.com")],
                CaId(1),
                Day(99),
                90,
                KeyId(1),
            ),
            Day(99),
        );
        let crtsh = CrtShIndex::build(&log);
        let stats = observability(
            &[hijack(Some(666))],
            &PassiveDns::new(),
            &scans,
            &ZoneSnapshotArchive::with_access(Vec::<String>::new()),
            &crtsh,
        );
        assert!((stats.frac_cert_in_n_scans(3) - 1.0).abs() < 1e-9);
        assert_eq!(stats.frac_cert_in_n_scans(1), 0.0);
    }
}
