//! Stage 4: inspecting shortlisted candidates against pDNS and CT (§4.4).
//!
//! This stage replaces the paper's manual per-domain analysis with the
//! same decision procedure, codified:
//!
//! * **T1** — the transient presented a *new* certificate. It is a hijack
//!   when pDNS shows a short-lived delegation (or resolution) change
//!   *near the certificate's issuance day*; it is dismissed when the
//!   certificate long predates the transient's visibility (a legitimate
//!   deployment briefly visible to scans); lacking pDNS it stays
//!   inconclusive until the shared-infrastructure (T1*) pass.
//! * **T2** — the transient presented the stable deployment's own
//!   certificate (proxy prelude). It is a hijack when pDNS shows the
//!   redirection *and* CT shows a fresh certificate for the sensitive
//!   subdomain in the same window; redirection without a certificate
//!   marks the domain *targeted* (the ais.gov.vn case), as does a truly
//!   anomalous transient with no corroboration at all.

use crate::shortlist::Candidate;
use retrodns_cert::{CertId, Certificate, CrtShIndex};
use retrodns_dns::{DnssecArchive, PassiveDns, PdnsEntry, RecordType};
use retrodns_types::{Asn, CountryCode, Day, DomainName, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// How a hijacked domain was identified (Table 2's *Type* column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionType {
    /// Transient with new certificate, pDNS-corroborated.
    T1,
    /// Transient with new certificate, no pDNS — but the attacker IP was
    /// used in another confirmed hijack.
    T1Star,
    /// Proxy prelude with pDNS redirection + CT issuance.
    T2,
    /// Discovered by pivoting on a confirmed attacker IP.
    PivotIp,
    /// Discovered by pivoting on a confirmed rogue nameserver.
    PivotNs,
}

impl DetectionType {
    /// Table 2 rendering.
    pub fn label(&self) -> &'static str {
        match self {
            DetectionType::T1 => "T1",
            DetectionType::T1Star => "T1*",
            DetectionType::T2 => "T2",
            DetectionType::PivotIp => "P-IP",
            DetectionType::PivotNs => "P-NS",
        }
    }
}

/// A domain concluded hijacked, with its evidence (one Table 2 row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedHijack {
    /// The victim registered domain.
    pub domain: DomainName,
    /// How it was identified.
    pub dtype: DetectionType,
    /// The targeted sensitive subdomain, if identified.
    pub sub: Option<DomainName>,
    /// First day of hijack evidence (Table 2 *Hij.* column).
    pub first_evidence: Day,
    /// pDNS corroboration present?
    pub pdns_corroborated: bool,
    /// CT corroboration present?
    pub ct_corroborated: bool,
    /// DNSSEC-disable corroboration present (§7.1 extension signal)?
    pub dnssec_corroborated: bool,
    /// The maliciously obtained certificate, if found.
    pub malicious_cert: Option<CertId>,
    /// Attacker server address(es).
    pub attacker_ips: Vec<Ipv4Addr>,
    /// Attacker ASN (of the transient deployment).
    pub attacker_asn: Option<Asn>,
    /// Attacker country.
    pub attacker_cc: Option<CountryCode>,
    /// Rogue nameservers implicated via pDNS.
    pub attacker_ns: Vec<DomainName>,
    /// The victim's stable ASNs (empty for pivot-only discoveries).
    pub victim_asns: Vec<Asn>,
    /// The victim's stable countries.
    pub victim_ccs: Vec<CountryCode>,
    /// The transient geolocated to a victim country but its origin AS does
    /// not plausibly announce addresses there (BGP-assisted-hijack
    /// annotation, carried from the shortlist stage).
    #[serde(default, skip_serializing_if = "serde::__is_default")]
    pub geo_implausible: bool,
}

/// A domain concluded targeted-but-not-hijacked (one Table 3 row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectedTarget {
    /// The victim registered domain.
    pub domain: DomainName,
    /// The sensitive subdomain involved, if identified.
    pub sub: Option<DomainName>,
    /// First day of the suspicious transient.
    pub first_evidence: Day,
    /// pDNS corroboration present?
    pub pdns_corroborated: bool,
    /// CT corroboration present?
    pub ct_corroborated: bool,
    /// The suspected attacker address.
    pub attacker_ip: Option<Ipv4Addr>,
    /// Attacker ASN.
    pub attacker_asn: Option<Asn>,
    /// Attacker country.
    pub attacker_cc: Option<CountryCode>,
    /// Victim stable ASNs.
    pub victim_asns: Vec<Asn>,
    /// Victim stable countries.
    pub victim_ccs: Vec<CountryCode>,
}

/// A verdict the pipeline could not reach with full corroboration: one
/// or more sources stayed unavailable past their retry budget, so the
/// candidate (or pivot discovery) is reported under an explicit
/// *degraded* confidence tier — never silently dismissed and never
/// upgraded to hijacked.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DegradedVerdict {
    /// The registered domain whose verdict is degraded.
    pub domain: DomainName,
    /// Pipeline stage at which the degradation surfaced (`inspect` for
    /// shortlist/inspect candidates, `pivot` for pivot discoveries).
    pub stage: String,
    /// First day of the suspicious evidence that made the domain a
    /// candidate.
    pub first_evidence: Day,
    /// Canonical names of the unavailable sources, sorted.
    pub missing_sources: Vec<String>,
}

/// Why a candidate was dropped at inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DismissReason {
    /// The transient's certificate was issued long before the transient
    /// became visible — a legitimate deployment briefly caught by scans.
    StaleCert,
}

/// Per-candidate inspection outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum InspectOutcome {
    /// Concluded hijacked.
    Hijacked(DetectedHijack),
    /// Concluded targeted but not hijacked.
    Targeted(DetectedTarget),
    /// Dropped with a concrete benign explanation.
    Dismissed(DismissReason),
    /// Suspicious but uncorroborated (kept for the T1* pass).
    Inconclusive,
    /// A corroboration source stayed unavailable past its retry budget:
    /// the candidate is reported degraded instead of being judged.
    Degraded(DegradedVerdict),
}

/// Inspection thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InspectConfig {
    /// Certificate issuance must fall within this many days of the pDNS
    /// change to count as "issued near the time" (§4.4).
    pub issue_window_days: u32,
    /// A certificate issued at least this long before the transient's
    /// first scan appearance, absent pDNS changes, is a stale legitimate
    /// deployment.
    pub stale_days: u32,
    /// Maximum pDNS visibility (days) for a delegation/resolution change
    /// to count as "short-lived".
    pub short_change_max_days: u32,
    /// Slack (days) around the transient window when searching pDNS/CT.
    pub slack_days: u32,
    /// §7.1 extension: accept a DNSSEC-disable event overlapping the
    /// window as corroboration for T1 candidates lacking pDNS coverage.
    /// Off by default (the paper's baseline methodology).
    pub use_dnssec_signal: bool,
    /// Certificate-lineage extension (CERTainty-style): before dismissing
    /// a T1 candidate as a stale legitimate deployment, check whether the
    /// certificate breaks the domain's lineage (it is not one of the
    /// stable deployment's certificates and covers a sensitive name); if
    /// so, re-anchor the pDNS search at the *issuance* day — a
    /// cert-mimicry attacker flips the delegation weeks before the
    /// endpoint ever becomes visible to scans. Off by default.
    #[serde(default)]
    pub cert_lineage_signal: bool,
    /// Maximum sighting density (observations per visibility day) for a
    /// *long-span* NS aggregate to count as an intermittent delegation.
    /// Aggregated pDNS merges repeat sightings of one (name, rdata) into
    /// a single row, so a slow-burn actor reusing the same rogue
    /// nameservers across periods leaves an aggregate spanning months
    /// that was actually sighted on only a handful of days — long enough
    /// to evade the short-change filter, yet far too sparse to be a real
    /// delegation (those are sighted near-daily). Only consulted for
    /// candidates the shortlist kept via the cross-period recurrence
    /// signal, so it is inert in the paper-baseline configuration.
    #[serde(default = "default_sparse_ns_max_density")]
    pub sparse_ns_max_density: f64,
}

fn default_sparse_ns_max_density() -> f64 {
    0.05
}

impl Default for InspectConfig {
    fn default() -> Self {
        InspectConfig {
            issue_window_days: 14,
            stale_days: 42,
            short_change_max_days: 45,
            slack_days: 21,
            use_dnssec_signal: false,
            cert_lineage_signal: false,
            sparse_ns_max_density: default_sparse_ns_max_density(),
        }
    }
}

/// pDNS evidence gathered for one candidate.
#[derive(Debug, Clone, Default)]
struct PdnsEvidence {
    /// Short-lived NS entries overlapping the window.
    ns_changes: Vec<PdnsEntry>,
    /// A-record entries resolving into the transient's addresses.
    a_changes: Vec<PdnsEntry>,
}

fn gather_pdns(pdns: &PassiveDns, candidate: &Candidate, cfg: &InspectConfig) -> PdnsEvidence {
    let from = candidate
        .transient
        .first
        .saturating_sub_days(cfg.slack_days + 7);
    let to = candidate.transient.last + cfg.slack_days;
    gather_pdns_window(pdns, candidate, from, to, cfg)
}

fn gather_pdns_window(
    pdns: &PassiveDns,
    candidate: &Candidate,
    from: Day,
    to: Day,
    cfg: &InspectConfig,
) -> PdnsEvidence {
    let all = pdns.entries_under(&candidate.domain);
    let mut ev = PdnsEvidence::default();
    for e in all {
        if !e.overlaps(from, to) {
            continue;
        }
        match e.rtype {
            RecordType::Ns
                if e.name == candidate.domain
                    && e.visibility_days() <= cfg.short_change_max_days =>
            {
                ev.ns_changes.push(e);
            }
            RecordType::A => {
                if let Some(ip) = e.rdata.as_a() {
                    if candidate.transient.ips.contains(&ip)
                        && e.visibility_days() <= cfg.short_change_max_days
                    {
                        ev.a_changes.push(e);
                    }
                }
            }
            _ => {}
        }
    }
    ev
}

/// Long-span NS aggregates over the candidate's domain that were sighted
/// too rarely to be a live delegation (see
/// [`InspectConfig::sparse_ns_max_density`]).
fn sparse_ns_aggregates(
    pdns: &PassiveDns,
    candidate: &Candidate,
    cfg: &InspectConfig,
) -> Vec<PdnsEntry> {
    pdns.entries_under(&candidate.domain)
        .into_iter()
        .filter(|e| {
            e.rtype == RecordType::Ns
                && e.name == candidate.domain
                && e.visibility_days() > cfg.short_change_max_days
                && (e.count as f64) <= cfg.sparse_ns_max_density * f64::from(e.visibility_days())
        })
        .collect()
}

/// Is `day` within `window` days of any change's sighting window?
fn near_change(changes: &[PdnsEntry], day: Day, window: u32) -> bool {
    changes.iter().any(|e| {
        let lo = e.first_seen.saturating_sub_days(window);
        let hi = e.last_seen + window;
        day >= lo && day <= hi
    })
}

#[allow(clippy::too_many_arguments)]
fn evidence_hijack(
    candidate: &Candidate,
    dtype: DetectionType,
    first_evidence: Day,
    pdns_ev: &PdnsEvidence,
    ct: bool,
    dnssec: bool,
    cert: Option<CertId>,
    sub: Option<DomainName>,
) -> DetectedHijack {
    let attacker_ns: Vec<DomainName> = pdns_ev
        .ns_changes
        .iter()
        .filter_map(|e| e.rdata.as_ns().cloned())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    DetectedHijack {
        domain: candidate.domain.clone(),
        dtype,
        sub,
        first_evidence,
        pdns_corroborated: !pdns_ev.ns_changes.is_empty() || !pdns_ev.a_changes.is_empty(),
        ct_corroborated: ct,
        dnssec_corroborated: dnssec,
        malicious_cert: cert,
        attacker_ips: candidate.transient.ips.iter().copied().collect(),
        attacker_asn: Some(candidate.transient.asn),
        attacker_cc: candidate.transient.countries.iter().next().copied(),
        attacker_ns,
        victim_asns: candidate.background.asns.iter().copied().collect(),
        victim_ccs: candidate.background.countries.iter().copied().collect(),
        geo_implausible: candidate.geo_implausible,
    }
}

fn evidence_target(
    candidate: &Candidate,
    first_evidence: Day,
    pdns: bool,
    ct: bool,
    sub: Option<DomainName>,
) -> DetectedTarget {
    DetectedTarget {
        domain: candidate.domain.clone(),
        sub,
        first_evidence,
        pdns_corroborated: pdns,
        ct_corroborated: ct,
        attacker_ip: candidate.transient.ips.iter().next().copied(),
        attacker_asn: Some(candidate.transient.asn),
        attacker_cc: candidate.transient.countries.iter().next().copied(),
        victim_asns: candidate.background.asns.iter().copied().collect(),
        victim_ccs: candidate.background.countries.iter().copied().collect(),
    }
}

/// Inspect one candidate. `dnssec` supplies the §7.1 extension signal
/// (ignored unless `cfg.use_dnssec_signal` is set).
pub fn inspect_candidate(
    candidate: &Candidate,
    pdns: &PassiveDns,
    crtsh: &CrtShIndex,
    certs: &HashMap<CertId, Certificate>,
    dnssec: Option<&DnssecArchive>,
    cfg: &InspectConfig,
) -> InspectOutcome {
    let pdns_ev = gather_pdns(pdns, candidate, cfg);
    let window_from = candidate
        .transient
        .first
        .saturating_sub_days(cfg.slack_days + 7);
    let window_to = candidate.transient.last + cfg.slack_days;

    match candidate.finding.kind {
        crate::classify::TransientKind::T1 => {
            // The suspicious certificate(s): new certs of the transient.
            // Issuance day from CT where logged, else from the scanned
            // certificate itself.
            let mut best: Option<(CertId, Day, Option<DomainName>)> = None;
            for id in &candidate.finding.new_certs {
                let (issued, sub) = match crtsh.record(*id) {
                    Some(r) => (r.issued, r.names.iter().find(|n| n.is_sensitive()).cloned()),
                    None => match certs.get(id) {
                        Some(c) => (
                            c.not_before,
                            c.names.iter().find(|n| n.is_sensitive()).cloned(),
                        ),
                        None => continue,
                    },
                };
                // Prefer sensitive-name certs, then recency.
                let better = match &best {
                    None => true,
                    Some((_, bd, bsub)) => {
                        (sub.is_some() && bsub.is_none())
                            || (sub.is_some() == bsub.is_some() && issued > *bd)
                    }
                };
                if better {
                    best = Some((*id, issued, sub));
                }
            }
            let Some((cert_id, issued, sub)) = best else {
                return InspectOutcome::Inconclusive;
            };

            let pdns_changes_near: bool =
                near_change(&pdns_ev.ns_changes, issued, cfg.issue_window_days)
                    || near_change(&pdns_ev.a_changes, issued, cfg.issue_window_days);

            if pdns_changes_near {
                return InspectOutcome::Hijacked(evidence_hijack(
                    candidate,
                    DetectionType::T1,
                    issued,
                    &pdns_ev,
                    crtsh.record(cert_id).is_some(),
                    false,
                    Some(cert_id),
                    sub,
                ));
            }

            // §7.1 extension: a DNSSEC-disable event bracketing the
            // issuance substitutes for missing pDNS coverage — only a
            // registrar/registry-capable actor can strip the DS records.
            if cfg.use_dnssec_signal {
                if let Some(archive) = dnssec {
                    let events = archive.disable_events_in(
                        &candidate.domain,
                        issued.saturating_sub_days(cfg.issue_window_days),
                        issued + cfg.issue_window_days,
                    );
                    if !events.is_empty() {
                        return InspectOutcome::Hijacked(evidence_hijack(
                            candidate,
                            DetectionType::T1,
                            issued,
                            &pdns_ev,
                            crtsh.record(cert_id).is_some(),
                            true,
                            Some(cert_id),
                            sub,
                        ));
                    }
                }
            }

            // Recurrence extension: the shortlist kept this candidate
            // because a similar transient recurs across ≥3 consecutive
            // periods. A slow-burn actor reusing one set of rogue
            // nameservers leaves their delegation flips merged into a
            // single months-spanning pDNS aggregate whose visibility
            // window fails the short-change filter above — but whose
            // sighting count is a give-away: a genuine delegation is
            // observed near-daily, while the merged flips amount to a
            // few sighting-days spread over months. Accept such a
            // sparse aggregate bracketing the issuance day as the
            // delegation-change corroboration.
            if candidate.recurrent_periods > 0 {
                let sparse = sparse_ns_aggregates(pdns, candidate, cfg);
                if near_change(&sparse, issued, cfg.issue_window_days) {
                    let ev = PdnsEvidence {
                        ns_changes: sparse,
                        a_changes: pdns_ev.a_changes.clone(),
                    };
                    return InspectOutcome::Hijacked(evidence_hijack(
                        candidate,
                        DetectionType::T1,
                        issued,
                        &ev,
                        crtsh.record(cert_id).is_some(),
                        false,
                        Some(cert_id),
                        sub,
                    ));
                }
            }

            // Cert-lineage extension: the transient's certificate is not
            // one the stable deployment ever used and it covers a
            // sensitive name — before trusting the stale-cert heuristic,
            // re-anchor the pDNS search around the issuance day itself.
            // A cert-mimicry attacker flips the delegation (and obtains
            // the certificate) weeks before standing up the visible
            // endpoint, putting the flip outside the transient-anchored
            // search window above.
            if cfg.cert_lineage_signal
                && sub.is_some()
                && !candidate.background.certs.contains(&cert_id)
            {
                let near_ev = gather_pdns_window(
                    pdns,
                    candidate,
                    issued.saturating_sub_days(cfg.slack_days),
                    issued + cfg.slack_days,
                    cfg,
                );
                if near_change(&near_ev.ns_changes, issued, cfg.issue_window_days)
                    || near_change(&near_ev.a_changes, issued, cfg.issue_window_days)
                {
                    return InspectOutcome::Hijacked(evidence_hijack(
                        candidate,
                        DetectionType::T1,
                        issued,
                        &near_ev,
                        crtsh.record(cert_id).is_some(),
                        false,
                        Some(cert_id),
                        sub,
                    ));
                }
                // Lineage is broken but no flip was captured: the
                // stale-cert dismissal no longer applies — keep the
                // candidate for the shared-infrastructure (T1*) pass
                // rather than writing it off as a benign deployment.
                return InspectOutcome::Inconclusive;
            }

            // No pDNS change near issuance. Stale certificate ⇒ benign
            // deployment briefly visible.
            if issued + cfg.stale_days < candidate.transient.first
                && pdns_ev.ns_changes.is_empty()
                && pdns_ev.a_changes.is_empty()
            {
                return InspectOutcome::Dismissed(DismissReason::StaleCert);
            }

            // A T1-pattern anomaly with a fresh certificate but no pDNS
            // corroboration stays inconclusive: the paper's *targeted*
            // verdicts all match pattern T2 (Table 3: "deployment maps
            // for all these domains match Pattern T2"), while T1-pattern
            // candidates without corroboration were left undetermined.
            InspectOutcome::Inconclusive
        }

        crate::classify::TransientKind::T2 => {
            let redirected = !pdns_ev.ns_changes.is_empty() || !pdns_ev.a_changes.is_empty();
            // Fresh certificate for a sensitive subdomain in the window,
            // not one the stable deployment uses.
            let fresh_cert = crtsh
                .search_registered_in(&candidate.domain, window_from..=window_to)
                .into_iter()
                .filter(|r| !candidate.background.certs.contains(&r.id))
                .filter(|r| crtsh.introduces_new_key(&candidate.domain, r))
                .find(|r| r.names.iter().any(|n| n.is_sensitive()));

            match (redirected, fresh_cert) {
                (true, Some(r)) => {
                    let sub = r.names.iter().find(|n| n.is_sensitive()).cloned();
                    let issued = r.issued;
                    let id = r.id;
                    InspectOutcome::Hijacked(evidence_hijack(
                        candidate,
                        DetectionType::T2,
                        issued,
                        &pdns_ev,
                        true,
                        false,
                        Some(id),
                        sub,
                    ))
                }
                (true, None) => InspectOutcome::Targeted(evidence_target(
                    candidate,
                    candidate.transient.first,
                    true,
                    false,
                    None,
                )),
                (false, _) if candidate.truly_anomalous => InspectOutcome::Targeted(
                    evidence_target(candidate, candidate.transient.first, false, false, None),
                ),
                _ => InspectOutcome::Inconclusive,
            }
        }
    }
}

/// The T1* pass: inconclusive T1 candidates whose attacker IP was used in
/// another *confirmed* hijack are concluded hijacked (the paper's
/// apc.gov.ae / moh.gov.kw rule).
pub fn t1_star_pass(
    inconclusive: &[(Candidate, Day, Option<CertId>, Option<DomainName>)],
    confirmed_ips: &BTreeSet<Ipv4Addr>,
) -> Vec<DetectedHijack> {
    let mut out = Vec::new();
    for (candidate, issued, cert, sub) in inconclusive {
        if candidate
            .transient
            .ips
            .iter()
            .any(|ip| confirmed_ips.contains(ip))
        {
            out.push(DetectedHijack {
                domain: candidate.domain.clone(),
                dtype: DetectionType::T1Star,
                sub: sub.clone(),
                first_evidence: *issued,
                pdns_corroborated: false,
                ct_corroborated: cert.is_some(),
                dnssec_corroborated: false,
                malicious_cert: *cert,
                attacker_ips: candidate.transient.ips.iter().copied().collect(),
                attacker_asn: Some(candidate.transient.asn),
                attacker_cc: candidate.transient.countries.iter().next().copied(),
                attacker_ns: Vec::new(),
                victim_asns: candidate.background.asns.iter().copied().collect(),
                victim_ccs: candidate.background.countries.iter().copied().collect(),
                geo_implausible: candidate.geo_implausible,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{StableBackground, TransientFinding, TransientKind};
    use crate::map::Deployment;
    use retrodns_cert::authority::CaId;
    use retrodns_cert::{CtLog, KeyId};
    use retrodns_dns::RecordData;
    use retrodns_types::StudyWindow;
    use std::collections::BTreeMap;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn transient(first: u32, last: u32, the_ip: &str, cert: u64) -> Deployment {
        Deployment {
            asn: Asn(200),
            first: Day(first),
            last: Day(last),
            dates: vec![Day(first), Day(last)],
            ips: [ip(the_ip)].into_iter().collect(),
            certs: [CertId(cert)].into_iter().collect(),
            countries: ["NL".parse().unwrap()].into_iter().collect(),
            trusted_certs: [CertId(cert)].into_iter().collect(),
            cert_windows: BTreeMap::new(),
            country_windows: BTreeMap::new(),
        }
    }

    fn candidate(kind: TransientKind, cert: u64, truly_anomalous: bool) -> Candidate {
        let mut background = StableBackground::default();
        background.asns.insert(Asn(100));
        background.countries.insert("KG".parse().unwrap());
        background.certs.insert(CertId(1));
        Candidate {
            domain: d("mfa.gov.kg"),
            period: StudyWindow::default().periods()[0],
            finding: TransientFinding {
                deployment: 0,
                kind,
                new_certs: if kind == TransientKind::T1 {
                    [CertId(cert)].into_iter().collect()
                } else {
                    BTreeSet::new()
                },
            },
            transient: transient(98, 105, "94.103.91.159", cert),
            background,
            truly_anomalous,
            via_anomalous_route: false,
            sensitive_names: vec![d("mail.mfa.gov.kg")],
            degraded_sources: Vec::new(),
            recurrent_periods: 0,
            geo_implausible: false,
        }
    }

    /// CT index with the malicious cert issued on day 100.
    fn crtsh_with(cert: u64, issued: u32) -> (CrtShIndex, HashMap<CertId, Certificate>) {
        let c = Certificate::new(
            CertId(cert),
            vec![d("mail.mfa.gov.kg")],
            CaId(1),
            Day(issued),
            90,
            KeyId(9),
        );
        let mut log = CtLog::new();
        log.submit(c.clone(), Day(issued));
        let idx = CrtShIndex::build(&log);
        let mut map = HashMap::new();
        map.insert(CertId(cert), c);
        (idx, map)
    }

    fn pdns_with_hijack() -> PassiveDns {
        let mut p = PassiveDns::new();
        // Long-lived legitimate delegation.
        p.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(0),
            Day(180),
            100,
        );
        // Short-lived rogue delegation around day 100.
        p.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(100),
            Day(101),
            2,
        );
        // Targeted subdomain resolving to the attacker IP.
        p.insert_aggregate(
            &d("mail.mfa.gov.kg"),
            RecordData::A(ip("94.103.91.159")),
            Day(100),
            Day(100),
            1,
        );
        p
    }

    #[test]
    fn t1_with_pdns_and_ct_is_hijacked() {
        let (crtsh, certs) = crtsh_with(666, 100);
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns_with_hijack(),
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        let InspectOutcome::Hijacked(h) = out else {
            panic!("expected hijacked, got {out:?}")
        };
        assert_eq!(h.dtype, DetectionType::T1);
        assert!(h.pdns_corroborated && h.ct_corroborated);
        assert_eq!(h.malicious_cert, Some(CertId(666)));
        assert_eq!(h.sub, Some(d("mail.mfa.gov.kg")));
        assert_eq!(h.attacker_ns, vec![d("ns1.kg-infocom.ru")]);
        assert_eq!(h.first_evidence, Day(100));
    }

    #[test]
    fn t1_without_pdns_is_inconclusive() {
        let (crtsh, certs) = crtsh_with(666, 100);
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &PassiveDns::new(),
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        assert!(matches!(out, InspectOutcome::Inconclusive));
    }

    #[test]
    fn t1_stale_cert_dismissed() {
        // Cert issued day 0; transient first seen day 98 — stale.
        let (crtsh, certs) = crtsh_with(666, 0);
        let mut pdns = PassiveDns::new();
        pdns.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(0),
            Day(180),
            10,
        );
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns,
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        assert!(matches!(
            out,
            InspectOutcome::Dismissed(DismissReason::StaleCert)
        ));
    }

    #[test]
    fn t1_issuance_far_from_change_not_hijacked() {
        // Cert issued day 100 but the only pDNS change was in day 10.
        let (crtsh, certs) = crtsh_with(666, 100);
        let mut pdns = PassiveDns::new();
        pdns.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(10),
            Day(11),
            2,
        );
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns,
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        assert!(!matches!(out, InspectOutcome::Hijacked(_)));
    }

    #[test]
    fn t2_with_redirection_and_fresh_cert_is_hijacked() {
        let (crtsh, certs) = crtsh_with(667, 100);
        let out = inspect_candidate(
            &candidate(TransientKind::T2, 1, false),
            &pdns_with_hijack(),
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        let InspectOutcome::Hijacked(h) = out else {
            panic!("expected hijacked, got {out:?}")
        };
        assert_eq!(h.dtype, DetectionType::T2);
        assert_eq!(h.malicious_cert, Some(CertId(667)));
    }

    #[test]
    fn t2_redirection_without_cert_is_targeted() {
        // pDNS shows redirection but CT has nothing (ais.gov.vn case).
        let out = inspect_candidate(
            &candidate(TransientKind::T2, 1, false),
            &pdns_with_hijack(),
            &CrtShIndex::default(),
            &HashMap::new(),
            None,
            &InspectConfig::default(),
        );
        let InspectOutcome::Targeted(t) = out else {
            panic!("expected targeted, got {out:?}")
        };
        assert!(t.pdns_corroborated);
        assert!(!t.ct_corroborated);
    }

    #[test]
    fn t2_no_corroboration_targeted_only_if_truly_anomalous() {
        let quiet = PassiveDns::new();
        let out = inspect_candidate(
            &candidate(TransientKind::T2, 1, false),
            &quiet,
            &CrtShIndex::default(),
            &HashMap::new(),
            None,
            &InspectConfig::default(),
        );
        assert!(matches!(out, InspectOutcome::Inconclusive));

        let out = inspect_candidate(
            &candidate(TransientKind::T2, 1, true),
            &quiet,
            &CrtShIndex::default(),
            &HashMap::new(),
            None,
            &InspectConfig::default(),
        );
        assert!(matches!(out, InspectOutcome::Targeted(_)));
    }

    #[test]
    fn t1_dnssec_signal_substitutes_for_pdns() {
        let (crtsh, certs) = crtsh_with(666, 100);
        let mut archive = DnssecArchive::new();
        archive.record_span(Day(0), Day(97), &d("mfa.gov.kg"), true);
        archive.record_span(Day(98), Day(120), &d("mfa.gov.kg"), false);
        archive.record_span(Day(121), Day(400), &d("mfa.gov.kg"), true);
        // Without the signal enabled: inconclusive (no pDNS).
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &PassiveDns::new(),
            &crtsh,
            &certs,
            Some(&archive),
            &InspectConfig::default(),
        );
        assert!(matches!(out, InspectOutcome::Inconclusive));
        // With the signal enabled: hijacked, dnssec-corroborated.
        let cfg = InspectConfig {
            use_dnssec_signal: true,
            ..InspectConfig::default()
        };
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &PassiveDns::new(),
            &crtsh,
            &certs,
            Some(&archive),
            &cfg,
        );
        let InspectOutcome::Hijacked(h) = out else {
            panic!("expected hijacked, got {out:?}")
        };
        assert!(h.dnssec_corroborated);
        assert!(!h.pdns_corroborated);
        // A disable event far from the issuance does not corroborate.
        let mut far = DnssecArchive::new();
        far.record_span(Day(0), Day(500), &d("mfa.gov.kg"), true);
        far.record_span(Day(501), Day(520), &d("mfa.gov.kg"), false);
        far.record_span(Day(521), Day(600), &d("mfa.gov.kg"), true);
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &PassiveDns::new(),
            &crtsh,
            &certs,
            Some(&far),
            &cfg,
        );
        assert!(matches!(out, InspectOutcome::Inconclusive));
    }

    /// pDNS as a slow-burn attacker leaves it: the legitimate delegation
    /// is a dense months-long aggregate, while the rogue nameserver's
    /// repeated one-day flips have been merged by `insert_aggregate` into
    /// one months-spanning row with only a handful of sighting-days.
    fn pdns_with_merged_slowburn_flips() -> PassiveDns {
        let mut p = PassiveDns::new();
        p.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(0),
            Day(180),
            170, // near-daily: a real delegation
        );
        p.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(20),
            Day(160),
            5, // five sighting-days over ~five months: merged flips
        );
        p
    }

    #[test]
    fn recurrent_candidate_accepts_sparse_merged_ns_aggregate() {
        let (crtsh, certs) = crtsh_with(666, 100);
        let mut cand = candidate(TransientKind::T1, 666, false);
        cand.recurrent_periods = 4;
        let out = inspect_candidate(
            &cand,
            &pdns_with_merged_slowburn_flips(),
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        let InspectOutcome::Hijacked(h) = out else {
            panic!("expected hijacked, got {out:?}")
        };
        assert_eq!(h.dtype, DetectionType::T1);
        assert!(h.pdns_corroborated && h.ct_corroborated);
        // Only the sparse rogue delegation counts as evidence — the dense
        // legitimate aggregate fails the sparsity filter.
        assert_eq!(h.attacker_ns, vec![d("ns1.kg-infocom.ru")]);
    }

    #[test]
    fn sparse_ns_path_is_inert_without_recurrence() {
        // Identical pDNS, but the candidate did not recur across periods
        // (`recurrent_periods` stays 0, as in baseline mode where the
        // recurrence signal is off): outcome unchanged from before the
        // extension existed.
        let (crtsh, certs) = crtsh_with(666, 100);
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns_with_merged_slowburn_flips(),
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        assert!(matches!(out, InspectOutcome::Inconclusive));
    }

    #[test]
    fn sparse_aggregate_far_from_issuance_does_not_corroborate() {
        // The merged-flip aggregate starts well after the cert issuance:
        // sparsity alone is not evidence, the issuance must fall inside
        // the aggregate's (padded) sighting window.
        let (crtsh, certs) = crtsh_with(666, 100);
        let mut p = PassiveDns::new();
        p.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(150),
            Day(300),
            5,
        );
        let mut cand = candidate(TransientKind::T1, 666, false);
        cand.recurrent_periods = 4;
        let out = inspect_candidate(&cand, &p, &crtsh, &certs, None, &InspectConfig::default());
        assert!(matches!(out, InspectOutcome::Inconclusive));
    }

    #[test]
    fn cert_lineage_reanchors_stale_cert_at_issuance() {
        // Cert issued day 40; transient visible day 98–105: stale by the
        // baseline heuristic (98 - 40 > 42). The delegation flip sits at
        // the issuance day, far outside the transient-anchored window.
        let (crtsh, certs) = crtsh_with(666, 40);
        let mut pdns = PassiveDns::new();
        pdns.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(0),
            Day(180),
            100,
        );
        pdns.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(40),
            Day(41),
            2,
        );
        // Baseline: dismissed as a stale legitimate deployment.
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns,
            &crtsh,
            &certs,
            None,
            &InspectConfig::default(),
        );
        assert!(matches!(
            out,
            InspectOutcome::Dismissed(DismissReason::StaleCert)
        ));
        // With the lineage signal: the flip near issuance promotes it.
        let cfg = InspectConfig {
            cert_lineage_signal: true,
            ..InspectConfig::default()
        };
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns,
            &crtsh,
            &certs,
            None,
            &cfg,
        );
        let InspectOutcome::Hijacked(h) = out else {
            panic!("expected hijacked, got {out:?}")
        };
        assert_eq!(h.dtype, DetectionType::T1);
        assert_eq!(h.first_evidence, Day(40));
        assert_eq!(h.attacker_ns, vec![d("ns1.kg-infocom.ru")]);
    }

    #[test]
    fn cert_lineage_without_flip_is_inconclusive_not_dismissed() {
        // Lineage is broken (fresh sensitive cert, not a background cert)
        // but pDNS shows no flip anywhere near issuance: a benign stale
        // blip migrates Dismissed → Inconclusive when the signal is on,
        // and is never upgraded to hijacked.
        let (crtsh, certs) = crtsh_with(666, 40);
        let mut pdns = PassiveDns::new();
        pdns.insert_aggregate(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(0),
            Day(180),
            100,
        );
        let cfg = InspectConfig {
            cert_lineage_signal: true,
            ..InspectConfig::default()
        };
        let out = inspect_candidate(
            &candidate(TransientKind::T1, 666, false),
            &pdns,
            &crtsh,
            &certs,
            None,
            &cfg,
        );
        assert!(matches!(out, InspectOutcome::Inconclusive));
    }

    #[test]
    fn t1_star_requires_shared_infrastructure() {
        let c = candidate(TransientKind::T1, 666, false);
        let inconclusive = vec![(c, Day(100), Some(CertId(666)), Some(d("mail.mfa.gov.kg")))];
        let mut confirmed: BTreeSet<Ipv4Addr> = BTreeSet::new();
        assert!(t1_star_pass(&inconclusive, &confirmed).is_empty());
        confirmed.insert(ip("94.103.91.159"));
        let found = t1_star_pass(&inconclusive, &confirmed);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].dtype, DetectionType::T1Star);
        assert!(!found[0].pdns_corroborated);
    }
}
