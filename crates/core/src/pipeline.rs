//! The five-stage pipeline, wired end to end.
//!
//! [`Pipeline::run`] consumes the analyst-visible inputs — annotated scan
//! observations, the network-metadata database, certificate contents,
//! passive DNS, and the crt.sh index — and produces a [`Report`]: the
//! detected hijacks (Table 2), detected targets (Table 3), and the full
//! funnel accounting (§4.2–4.5) the experiments reproduce.

use crate::checkpoint::{config_fingerprint, CheckpointStore, Fingerprint};
use crate::classify::{classify, ClassifyConfig, Pattern};
use crate::inspect::{
    inspect_candidate, t1_star_pass, DegradedVerdict, DetectedHijack, DetectedTarget,
    DismissReason, InspectConfig, InspectOutcome,
};
use crate::map::{DeploymentMap, MapBuilder};
use crate::metrics::{self, MetricsRegistry, MetricsShard};
use crate::observability::{PipelineTimings, StageTiming};
use crate::pivot::{pivot_guarded, PivotConfig};
use crate::shortlist::{shortlist_guarded, Candidate, ShortlistConfig};
use crate::sources::{query_key, ResilientSource, SourceGuard, SourcePolicy, SRC_GEO};
use retrodns_asdb::AsDatabase;
use retrodns_cert::{CertId, Certificate, CrtShIndex};
use retrodns_dns::{DnssecArchive, PassiveDns};
use retrodns_scan::DomainObservation;
use retrodns_store::{ObservationStore, ObservationView};
use retrodns_types::{Day, DomainName, SourceFaults, StudyWindow};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Everything a third-party analyst has access to.
pub struct AnalystInputs<'a> {
    /// Annotated per-domain scan observations (Censys CUIDS analog), in
    /// either representation: a row vector / [`retrodns_store::RowsView`]
    /// (the correctness oracle) or a columnar
    /// [`ObservationStore`](retrodns_store::ObservationStore). The
    /// pipeline produces byte-identical reports for equivalent inputs in
    /// either form.
    pub observations: &'a dyn ObservationView,
    /// pfx2as + as2org + geolocation.
    pub asdb: &'a AsDatabase,
    /// Certificate contents by id (retrievable from the scans themselves).
    pub certs: &'a HashMap<CertId, Certificate>,
    /// The passive-DNS database.
    pub pdns: &'a PassiveDns,
    /// The crt.sh index over CT.
    pub crtsh: &'a CrtShIndex,
    /// Optional DNSSEC measurement archive (§7.1 extension signal; only
    /// consulted when `InspectConfig::use_dnssec_signal` is set).
    pub dnssec: Option<&'a DnssecArchive>,
    /// Optional source-level fault injection (the fault harness and the
    /// resilience tests). `None` means every source call succeeds
    /// instantly, making the run byte-identical to one without the
    /// resilience layer.
    pub source_faults: Option<&'a dyn SourceFaults>,
}

/// Pipeline configuration: all stage thresholds plus execution knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The study window (periods, scan cadence).
    pub window: StudyWindow,
    /// Deployment-linking gap tolerance (missed scans).
    pub link_gap_scans: u32,
    /// Stage-2 thresholds.
    pub classify: ClassifyConfig,
    /// Stage-3 heuristics.
    pub shortlist: ShortlistConfig,
    /// Stage-4 thresholds.
    pub inspect: InspectConfig,
    /// Stage-5 thresholds.
    pub pivot: PivotConfig,
    /// Worker threads for the parallel stages — map building,
    /// classification and inspection (1 = fully serial). Any value
    /// produces a byte-identical [`Report`]; see `DESIGN.md` for the
    /// execution model.
    pub workers: usize,
    /// Retry/deadline/circuit-breaker policy for the corroboration
    /// sources (pdns, ct, as2org, geo); see `core::sources`.
    #[serde(default)]
    pub sources: SourcePolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: StudyWindow::default(),
            link_gap_scans: 2,
            classify: ClassifyConfig::default(),
            shortlist: ShortlistConfig::default(),
            inspect: InspectConfig::default(),
            pivot: PivotConfig::default(),
            workers: 1,
            sources: SourcePolicy::default(),
        }
    }
}

/// Funnel accounting across the five stages.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FunnelStats {
    /// Input records rejected by validation before map building, by
    /// reason (`out-of-window`, `unrouted`, `unknown-cert`, `duplicate`).
    /// Empty on clean inputs. Quarantined records are counted, never
    /// silently dropped — and never analyzed.
    #[serde(default)]
    pub quarantined: BTreeMap<String, usize>,
    /// Domains with at least one deployment map.
    pub domains_total: usize,
    /// (domain, period) maps built.
    pub maps_total: usize,
    /// Domain-level category counts (a domain counts as its most
    /// suspicious category across periods: transient > noisy >
    /// transition > stable).
    pub domain_categories: BTreeMap<String, usize>,
    /// Map-level category counts.
    pub map_categories: BTreeMap<String, usize>,
    /// Maps carrying at least one transient finding.
    pub transient_maps: usize,
    /// Candidates surviving the shortlist heuristics.
    pub shortlisted: usize,
    /// Of those, shortlisted via the truly-anomalous route.
    pub truly_anomalous: usize,
    /// Shortlist prune-reason histogram.
    pub pruned: BTreeMap<String, usize>,
    /// Candidates dismissed at inspection (stale certificates).
    pub dismissed_stale: usize,
    /// Candidates left inconclusive after inspection and the T1* pass.
    pub inconclusive: usize,
    /// Degraded verdicts per stage (`inspect` for shortlist/inspect
    /// candidates, `pivot` for pivot discoveries): verdicts whose
    /// corroboration sources stayed unavailable past their retry
    /// budget. Empty — and omitted from serialization — on a fault-free
    /// run.
    #[serde(default, skip_serializing_if = "serde::__is_default")]
    pub degraded: BTreeMap<String, usize>,
    /// Hijacks found per detection type.
    pub hijacks_by_type: BTreeMap<String, usize>,
}

/// The pipeline's output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Domains concluded hijacked (Table 2), deduplicated, ordered by
    /// domain name.
    pub hijacked: Vec<DetectedHijack>,
    /// Domains concluded targeted but not hijacked (Table 3).
    pub targeted: Vec<DetectedTarget>,
    /// Verdicts the pipeline could not corroborate because sources were
    /// unavailable past their retry budget, sorted (degraded mode —
    /// explicit, never silently upgraded or dropped). Empty — and
    /// omitted from serialization, keeping fault-free report JSON
    /// byte-identical to a build without the resilience layer — unless
    /// faults fired.
    #[serde(default, skip_serializing_if = "serde::__is_default")]
    pub degraded: Vec<DegradedVerdict>,
    /// Funnel accounting.
    pub funnel: FunnelStats,
    /// Per-stage wall-time/throughput breakdown of the run. Skipped in
    /// serialization so report JSON is byte-identical across worker
    /// counts and machines.
    #[serde(skip)]
    pub timings: PipelineTimings,
}

impl Report {
    /// The detected-hijack domain set.
    pub fn hijacked_domains(&self) -> Vec<DomainName> {
        self.hijacked.iter().map(|h| h.domain.clone()).collect()
    }

    /// The detected-target domain set.
    pub fn targeted_domains(&self) -> Vec<DomainName> {
        self.targeted.iter().map(|t| t.domain.clone()).collect()
    }
}

/// The five-stage pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Configuration used by every stage.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    /// Stage 1–2 only: build and classify maps (exposed for experiments).
    pub fn maps_and_patterns(
        &self,
        observations: &[DomainObservation],
    ) -> (Vec<DeploymentMap>, Vec<Pattern>) {
        let (maps, patterns, _, _) = self.maps_and_patterns_timed(observations);
        (maps, patterns)
    }

    /// Stage 1–2 with per-stage timings.
    fn maps_and_patterns_timed(
        &self,
        observations: &[DomainObservation],
    ) -> (Vec<DeploymentMap>, Vec<Pattern>, StageTiming, StageTiming) {
        let mut builder = MapBuilder::new(self.config.window.clone());
        builder.link_gap_scans = self.config.link_gap_scans;
        let t = Instant::now();
        let maps = builder.build_parallel(observations, self.config.workers);
        let map_timing = StageTiming::from_elapsed(t.elapsed(), observations.len());
        let t = Instant::now();
        let patterns = self.classify_maps(&maps);
        let classify_timing = StageTiming::from_elapsed(t.elapsed(), maps.len());
        (maps, patterns, map_timing, classify_timing)
    }

    /// Stage 2: classify every map, in parallel contiguous chunks when
    /// `workers > 1`. Chunk results are concatenated in chunk order, so
    /// the output vector is identical to the serial one.
    pub fn classify_maps(&self, maps: &[DeploymentMap]) -> Vec<Pattern> {
        self.classify_maps_metered(maps, &mut MetricsShard::default())
    }

    /// [`classify_maps`](Self::classify_maps) with per-worker metering:
    /// each worker's wall time and item count land in `shard` under
    /// `classify.worker.<i>.*`, plus a `classify.utilization` gauge
    /// (sum of worker time over `workers × slowest`; 1.0 = perfectly
    /// balanced chunks).
    pub fn classify_maps_metered(
        &self,
        maps: &[DeploymentMap],
        shard: &mut MetricsShard,
    ) -> Vec<Pattern> {
        self.classify_maps_guarded(maps, shard)
            .into_iter()
            .map(|p| p.expect("classify panicked"))
            .collect()
    }

    /// [`classify_maps_metered`](Self::classify_maps_metered) with
    /// per-map panic isolation: a map whose classification panics
    /// yields `None` in its slot instead of taking its worker (and the
    /// run) down. The pipeline quarantines `None` slots under the
    /// `worker_panic` reason; the plain entry points above treat any
    /// `None` as fatal, preserving their historical contract.
    fn classify_maps_guarded(
        &self,
        maps: &[DeploymentMap],
        shard: &mut MetricsShard,
    ) -> Vec<Option<Pattern>> {
        let Some(chunk) = parallel_chunk(maps.len(), self.config.workers, MIN_CLASSIFY_PER_WORKER)
        else {
            let t = Instant::now();
            let patterns: Vec<Option<Pattern>> = maps
                .iter()
                .map(|m| catch_item(|| classify(m, &self.config.classify)))
                .collect();
            shard.record_worker_stats("classify", &[(maps.len(), t.elapsed())]);
            return patterns;
        };
        // Pre-sized output written in place: each worker owns a disjoint
        // `&mut` window of the final vector, so there is nothing to
        // collect, merge, or re-order after the join.
        let mut patterns: Vec<Option<Pattern>> = Vec::new();
        patterns.resize_with(maps.len(), || None);
        let mut worker_stats: Vec<(usize, std::time::Duration)> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = maps
                .chunks(chunk)
                .zip(patterns.chunks_mut(chunk))
                .map(|(slice, out)| {
                    scope.spawn(move |_| {
                        let t = Instant::now();
                        for (m, o) in slice.iter().zip(out.iter_mut()) {
                            *o = catch_item(|| classify(m, &self.config.classify));
                        }
                        (slice.len(), t.elapsed())
                    })
                })
                .collect();
            for h in handles {
                worker_stats.push(h.join().expect("classify worker thread died"));
            }
        })
        .expect("crossbeam scope");
        shard.record_worker_stats("classify", &worker_stats);
        patterns
    }

    /// Stage 4: inspect a contiguous chunk of candidates, accumulating a
    /// mergeable partial result. Each chunk owns its source guards (so
    /// breaker history needs no locks and is deterministic for a given
    /// chunking) and its panic isolation: a candidate whose inspection
    /// panics is counted in `worker_panics` instead of killing the run.
    /// Guard tallies land in `shard` under `source.<name>.*`.
    fn inspect_chunk(
        &self,
        candidates: &[Candidate],
        inputs: &AnalystInputs,
        shard: &mut MetricsShard,
    ) -> InspectionResults {
        let mut pdns = ResilientSource::new(inputs.pdns, self.config.sources, inputs.source_faults);
        let mut crtsh =
            ResilientSource::new(inputs.crtsh, self.config.sources, inputs.source_faults);
        let mut out = InspectionResults::default();
        for candidate in candidates {
            let Some(outcome) =
                catch_item(|| self.inspect_one(candidate, inputs, &mut pdns, &mut crtsh))
            else {
                out.worker_panics += 1;
                continue;
            };
            match outcome {
                InspectOutcome::Hijacked(h) => out.hijacked.push(h),
                InspectOutcome::Targeted(t) => out.targeted.push(t),
                InspectOutcome::Degraded(d) => out.degraded.push(d),
                InspectOutcome::Dismissed(DismissReason::StaleCert) => {
                    out.dismissed_stale += 1;
                }
                InspectOutcome::Inconclusive => {
                    // Retain what we know for the T1* pass.
                    let (issued, cert, sub) = candidate
                        .finding
                        .new_certs
                        .iter()
                        .filter_map(|id| inputs.certs.get(id))
                        .map(|c| {
                            (
                                c.not_before,
                                Some(c.id),
                                c.names.iter().find(|n| n.is_sensitive()).cloned(),
                            )
                        })
                        .next()
                        .unwrap_or((candidate.transient.first, None, None));
                    out.inconclusive
                        .push((candidate.clone(), issued, cert, sub));
                }
            }
        }
        pdns.record(shard);
        crtsh.record(shard);
        out
    }

    /// Inspect one candidate through the guarded sources. One logical
    /// call per source — keyed by (domain, period) — models the
    /// transport round for all of that candidate's sub-queries; only
    /// when every source answers does the pure decision procedure run.
    /// Any exhausted source (or a degradation inherited from the
    /// shortlist) turns the verdict into an explicit
    /// [`InspectOutcome::Degraded`].
    fn inspect_one(
        &self,
        candidate: &Candidate,
        inputs: &AnalystInputs,
        pdns: &mut ResilientSource<PassiveDns>,
        crtsh: &mut ResilientSource<CrtShIndex>,
    ) -> InspectOutcome {
        let key = query_key(&[
            candidate.domain.as_str().as_bytes(),
            &candidate.period.id.to_le_bytes(),
        ]);
        let mut missing: BTreeSet<String> = candidate.degraded_sources.iter().cloned().collect();
        if pdns.call(key, |_| ()).is_err() {
            missing.insert(pdns.guard().name().to_string());
        }
        if crtsh.call(key, |_| ()).is_err() {
            missing.insert(crtsh.guard().name().to_string());
        }
        if !missing.is_empty() {
            return InspectOutcome::Degraded(DegradedVerdict {
                domain: candidate.domain.clone(),
                stage: "inspect".to_string(),
                first_evidence: candidate.transient.first,
                missing_sources: missing.into_iter().collect(),
            });
        }
        inspect_candidate(
            candidate,
            inputs.pdns,
            inputs.crtsh,
            inputs.certs,
            inputs.dnssec,
            &self.config.inspect,
        )
    }

    /// Stage 4 over all candidates: a crossbeam worker pool over
    /// contiguous chunks when `workers > 1`. Inputs are shared by
    /// reference (all read-only); per-worker partials merge in chunk
    /// order, reproducing the serial output exactly.
    pub fn inspect_candidates(
        &self,
        candidates: &[Candidate],
        inputs: &AnalystInputs,
    ) -> InspectionResults {
        self.inspect_candidates_metered(candidates, inputs, &mut MetricsShard::default())
    }

    /// [`inspect_candidates`](Self::inspect_candidates) with per-worker
    /// metering (`inspect.worker.<i>.*` gauges plus
    /// `inspect.utilization`), mirroring
    /// [`classify_maps_metered`](Self::classify_maps_metered).
    pub fn inspect_candidates_metered(
        &self,
        candidates: &[Candidate],
        inputs: &AnalystInputs,
        shard: &mut MetricsShard,
    ) -> InspectionResults {
        let Some(chunk) = parallel_chunk(
            candidates.len(),
            self.config.workers,
            MIN_INSPECT_PER_WORKER,
        ) else {
            let t = Instant::now();
            let out = self.inspect_chunk(candidates, inputs, shard);
            shard.record_worker_stats("inspect", &[(candidates.len(), t.elapsed())]);
            return out;
        };
        let workers = self.config.workers;
        let mut partials: Vec<InspectionResults> = Vec::with_capacity(workers);
        let mut worker_stats: Vec<(usize, std::time::Duration)> = Vec::with_capacity(workers);
        crossbeam::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move |_| {
                        let t = Instant::now();
                        let mut chunk_shard = MetricsShard::default();
                        let out = self.inspect_chunk(slice, inputs, &mut chunk_shard);
                        (out, chunk_shard, slice.len(), t.elapsed())
                    })
                })
                .collect();
            for h in handles {
                let (out, chunk_shard, items, wall) = h.join().expect("inspect worker thread died");
                partials.push(out);
                shard.merge(chunk_shard);
                worker_stats.push((items, wall));
            }
        })
        .expect("crossbeam scope");
        shard.record_worker_stats("inspect", &worker_stats);
        let mut merged = InspectionResults::default();
        for p in partials {
            merged.hijacked.extend(p.hijacked);
            merged.targeted.extend(p.targeted);
            merged.inconclusive.extend(p.inconclusive);
            merged.dismissed_stale += p.dismissed_stale;
            merged.degraded.extend(p.degraded);
            merged.worker_panics += p.worker_panics;
        }
        merged
    }

    /// Run the full pipeline.
    pub fn run(&self, inputs: &AnalystInputs) -> Report {
        self.run_internal(inputs, None, &mut MetricsRegistry::new())
    }

    /// Run the full pipeline, recording counters, gauges, histograms and
    /// spans into `metrics`. The returned [`Report`] is byte-identical
    /// (as JSON) to [`Pipeline::run`] — metrics never touch report
    /// serialization. After the run, `metrics.snapshot()` holds the full
    /// observability picture: the `funnel.*` counters reconcile exactly
    /// with [`Report::funnel`], `stage.*` gauges carry per-stage wall
    /// time / items / RSS / allocation deltas, and `*.worker.*` gauges
    /// expose shard balance.
    pub fn run_metered(&self, inputs: &AnalystInputs, metrics: &mut MetricsRegistry) -> Report {
        self.run_internal(inputs, None, metrics)
    }

    /// Run the full pipeline with stage checkpointing.
    ///
    /// After each resumable stage (map build, classify, shortlist,
    /// inspect) the stage output is written into `store`. If `store`
    /// already holds a checkpoint chain valid for this configuration and
    /// these inputs, the leading valid stages are loaded instead of
    /// recomputed and execution restarts from the first missing or
    /// invalid stage. The returned [`Report`] is byte-identical (as
    /// JSON) to an uninterrupted [`Pipeline::run`] over the same inputs
    /// — checkpointing extends the determinism guarantee of `DESIGN.md`
    /// §6; see `core::checkpoint` for the validation rules.
    ///
    /// Checkpoint *write* failures are non-fatal (the run proceeds and
    /// reports; only resumability is lost); a warning goes to stderr.
    pub fn run_resumable(&self, inputs: &AnalystInputs, store: &mut CheckpointStore) -> Report {
        self.run_internal(inputs, Some(store), &mut MetricsRegistry::new())
    }

    /// [`run_resumable`](Self::run_resumable) with metrics collection:
    /// checkpoint load/save/invalidation events land in `metrics` under
    /// `checkpoint.*` alongside everything [`run_metered`](Self::run_metered)
    /// records.
    pub fn run_resumable_metered(
        &self,
        inputs: &AnalystInputs,
        store: &mut CheckpointStore,
        metrics: &mut MetricsRegistry,
    ) -> Report {
        self.run_internal(inputs, Some(store), metrics)
    }

    fn run_internal(
        &self,
        inputs: &AnalystInputs,
        store: Option<&mut CheckpointStore>,
        metrics: &mut MetricsRegistry,
    ) -> Report {
        let run_start = Instant::now();
        let run_span = metrics.span_open("pipeline.run");
        let mut timings = PipelineTimings::default();

        // Checkpoint context: fingerprints bind stage snapshots to this
        // exact (config, inputs) pair; `chain_intact` tracks whether every
        // stage so far was served from a valid checkpoint — once a stage
        // misses, everything downstream is recomputed and overwritten.
        let mut store = store;
        if let Some(s) = store.as_deref_mut() {
            s.resumed.clear();
            s.computed.clear();
        }
        let fp = store.as_ref().map(|_| Fingerprint {
            config: config_fingerprint(&self.config),
            inputs: inputs.observations.fingerprint(),
        });
        let mut chain_intact = store.is_some();

        // ---- stage 0: validate + quarantine ---------------------------
        // Always recomputed (cheap, and the quarantine histogram feeds the
        // funnel even on a fully resumed run). Each input representation
        // is validated natively: rows through [`quarantine`], a columnar
        // store through [`quarantine_store`] (which emits a kept-row
        // selection instead of copying records).
        let span = metrics.span_open("stage.quarantine");
        let alloc0 = metrics::allocated_bytes_total();
        let t = Instant::now();
        let (kept, quarantined) = if let Some(rows) = inputs.observations.as_rows() {
            let (kept, quarantined) = quarantine(rows, &self.config.window, inputs.certs);
            (KeptObs::Rows(kept), quarantined)
        } else {
            let obs_store = inputs
                .observations
                .as_store()
                .expect("an ObservationView exposes rows or a store");
            let (selection, quarantined) =
                quarantine_store(obs_store, &self.config.window, inputs.certs);
            (
                KeptObs::Store {
                    store: obs_store,
                    selection,
                },
                quarantined,
            )
        };
        stage_sample(
            metrics,
            "quarantine",
            inputs.observations.len(),
            t.elapsed(),
            alloc0,
        );
        metrics.span_close(span);

        // ---- stage 1: deployment maps ---------------------------------
        let span = metrics.span_open("stage.map_build");
        let alloc0 = metrics::allocated_bytes_total();
        let mut ckpt_shard = MetricsShard::default();
        let mut stage_shard = MetricsShard::default();
        let t = Instant::now();
        let maps: Vec<DeploymentMap> = run_stage(
            &mut store,
            fp.as_ref(),
            &mut chain_intact,
            "maps",
            &mut ckpt_shard,
            || {
                let mut builder = MapBuilder::new(self.config.window.clone());
                builder.link_gap_scans = self.config.link_gap_scans;
                let (maps, shards) = match &kept {
                    KeptObs::Rows(rows) => builder.build_sharded_stats(rows, self.config.workers),
                    KeptObs::Store { store, selection } => {
                        builder.build_store_stats(store, selection.as_deref(), self.config.workers)
                    }
                };
                for (i, s) in shards.iter().enumerate() {
                    stage_shard.gauge(&format!("map_build.shard.{i}.items"), s.observations as f64);
                    stage_shard.gauge(&format!("map_build.shard.{i}.maps"), s.maps as f64);
                    stage_shard.gauge(
                        &format!("map_build.shard.{i}.arena_bytes"),
                        s.arena_bytes as f64,
                    );
                    stage_shard.observe("map_build.shard_items", s.observations as f64);
                }
                let max = shards.iter().map(|s| s.observations).max().unwrap_or(0);
                if max > 0 {
                    let mean = shards.iter().map(|s| s.observations).sum::<usize>() as f64
                        / shards.len() as f64;
                    stage_shard.gauge("map_build.shard_balance", mean / max as f64);
                }
                let worker_stats: Vec<(usize, std::time::Duration)> =
                    shards.iter().map(|s| (s.observations, s.wall)).collect();
                stage_shard.record_worker_stats("map_build", &worker_stats);
                maps
            },
        );
        timings.map_build = StageTiming::from_elapsed(t.elapsed(), kept.len());
        metrics.merge(ckpt_shard);
        metrics.merge(stage_shard);
        stage_sample(metrics, "map_build", kept.len(), t.elapsed(), alloc0);
        metrics.span_close(span);

        // ---- stage 2: classify ----------------------------------------
        let span = metrics.span_open("stage.classify");
        let alloc0 = metrics::allocated_bytes_total();
        let mut ckpt_shard = MetricsShard::default();
        let mut stage_shard = MetricsShard::default();
        let t = Instant::now();
        let patterns: Vec<Option<Pattern>> = run_stage(
            &mut store,
            fp.as_ref(),
            &mut chain_intact,
            "classify",
            &mut ckpt_shard,
            || self.classify_maps_guarded(&maps, &mut stage_shard),
        );
        timings.classify = StageTiming::from_elapsed(t.elapsed(), maps.len());
        metrics.merge(ckpt_shard);
        metrics.merge(stage_shard);
        stage_sample(metrics, "classify", maps.len(), t.elapsed(), alloc0);
        metrics.span_close(span);
        // Maps whose classification panicked are quarantined, not
        // analyzed — and not silently dropped.
        let (maps, patterns, classify_panics) = drop_panicked(maps, patterns);
        let mut quarantined = quarantined;
        if classify_panics > 0 {
            *quarantined.entry("worker_panic".to_string()).or_insert(0) += classify_panics;
        }

        // ---- funnel: population statistics -------------------------
        let mut funnel = funnel_population(&maps, &patterns, quarantined);

        // ---- stage 3: shortlist -------------------------------------
        let span = metrics.span_open("stage.shortlist");
        let alloc0 = metrics::allocated_bytes_total();
        let mut ckpt_shard = MetricsShard::default();
        let t = Instant::now();
        let mut as2org =
            ResilientSource::new(inputs.asdb, self.config.sources, inputs.source_faults);
        let shortlisted: crate::shortlist::ShortlistOutcome = run_stage(
            &mut store,
            fp.as_ref(),
            &mut chain_intact,
            "shortlist",
            &mut ckpt_shard,
            || {
                shortlist_guarded(
                    &maps,
                    &patterns,
                    &mut as2org,
                    inputs.certs,
                    &self.config.shortlist,
                )
            },
        );
        timings.shortlist = StageTiming::from_elapsed(t.elapsed(), maps.len());
        let mut src_shard = MetricsShard::default();
        as2org.record(&mut src_shard);
        metrics.merge(src_shard);
        metrics.merge(ckpt_shard);
        stage_sample(metrics, "shortlist", maps.len(), t.elapsed(), alloc0);
        metrics.span_close(span);
        apply_shortlist_funnel(&mut funnel, &shortlisted);

        // ---- stage 4: inspect ----------------------------------------
        let span = metrics.span_open("stage.inspect");
        let alloc0 = metrics::allocated_bytes_total();
        let mut ckpt_shard = MetricsShard::default();
        let mut stage_shard = MetricsShard::default();
        let t = Instant::now();
        let inspected: InspectionResults = run_stage(
            &mut store,
            fp.as_ref(),
            &mut chain_intact,
            "inspect",
            &mut ckpt_shard,
            || self.inspect_candidates_metered(&shortlisted.candidates, inputs, &mut stage_shard),
        );
        timings.inspect = StageTiming::from_elapsed(t.elapsed(), shortlisted.candidates.len());
        metrics.merge(ckpt_shard);
        metrics.merge(stage_shard);
        stage_sample(
            metrics,
            "inspect",
            shortlisted.candidates.len(),
            t.elapsed(),
            alloc0,
        );
        metrics.span_close(span);
        let mut report = self.finish_report(inputs, funnel, inspected, metrics, &mut timings);

        timings.total_ms = run_start.elapsed().as_secs_f64() * 1e3;
        record_funnel(metrics, &report.funnel);
        if let Some(kb) = metrics::peak_rss_kb() {
            metrics.gauge("process.peak_rss_kb", kb as f64);
        }
        if metrics::alloc_counting_active() {
            metrics.gauge(
                "process.alloc_bytes_total",
                metrics::allocated_bytes_total() as f64,
            );
            metrics.gauge(
                "process.alloc_count_total",
                metrics::allocation_count_total() as f64,
            );
        }
        metrics.span_close(run_span);
        report.timings = timings;
        report
    }

    /// The post-inspection tail of the pipeline, shared with the
    /// incremental analyzer: T1* promotion, pivot expansion, attacker geo
    /// backfill, degraded-mode accounting, and verdict dedup/ordering.
    /// Returns the assembled [`Report`] with default timings (the caller
    /// owns wall-clock bookkeeping); `timings.pivot` is filled in here.
    pub(crate) fn finish_report(
        &self,
        inputs: &AnalystInputs,
        mut funnel: FunnelStats,
        inspected: InspectionResults,
        metrics: &mut MetricsRegistry,
        timings: &mut PipelineTimings,
    ) -> Report {
        let InspectionResults {
            mut hijacked,
            targeted,
            inconclusive,
            dismissed_stale,
            degraded,
            worker_panics,
        } = inspected;
        funnel.dismissed_stale = dismissed_stale;
        let mut degraded = degraded;
        if worker_panics > 0 {
            *funnel
                .quarantined
                .entry("worker_panic".to_string())
                .or_insert(0) += worker_panics;
        }

        // ---- T1* pass -------------------------------------------------
        let confirmed_ips: BTreeSet<_> = hijacked
            .iter()
            .flat_map(|h| h.attacker_ips.iter().copied())
            .collect();
        let starred = t1_star_pass(&inconclusive, &confirmed_ips);
        metrics.count("t1_star.promoted", starred.len() as u64);
        let starred_domains: BTreeSet<_> = starred.iter().map(|h| h.domain.clone()).collect();
        funnel.inconclusive = inconclusive
            .iter()
            .filter(|(c, _, _, _)| !starred_domains.contains(&c.domain))
            .count();
        hijacked.extend(starred);

        // ---- stage 5: pivot -------------------------------------------
        let span = metrics.span_open("stage.pivot");
        let alloc0 = metrics::allocated_bytes_total();
        let t = Instant::now();
        let mut pdns_src =
            ResilientSource::new(inputs.pdns, self.config.sources, inputs.source_faults);
        let mut crtsh_src =
            ResilientSource::new(inputs.crtsh, self.config.sources, inputs.source_faults);
        let pivoted = pivot_guarded(&hijacked, &mut pdns_src, &mut crtsh_src, &self.config.pivot);
        timings.pivot = StageTiming::from_elapsed(t.elapsed(), hijacked.len());
        metrics.count("pivot.discovered", pivoted.found.len() as u64);
        if pivoted.degraded_lookups > 0 {
            metrics.count("pivot.degraded_lookups", pivoted.degraded_lookups as u64);
        }
        let mut src_shard = MetricsShard::default();
        pdns_src.record(&mut src_shard);
        crtsh_src.record(&mut src_shard);
        metrics.merge(src_shard);
        stage_sample(metrics, "pivot", hijacked.len(), t.elapsed(), alloc0);
        metrics.span_close(span);
        hijacked.extend(pivoted.found);
        degraded.extend(pivoted.degraded);

        // Backfill attacker network annotations (pivot discoveries know
        // only the IP; the as-database supplies ASN and country for the
        // Table 2/5 columns). The annotation is advisory, so an
        // unavailable geolocation source degrades only the annotation —
        // the verdict stands, and the gap is counted, never guessed.
        let mut geo = SourceGuard::new(SRC_GEO, self.config.sources, inputs.source_faults);
        let mut annotation_degraded = 0u64;
        for h in hijacked.iter_mut() {
            if h.attacker_asn.is_some() {
                continue;
            }
            let Some(ip) = h.attacker_ips.first().copied() else {
                continue;
            };
            let key = query_key(&[h.domain.as_str().as_bytes(), &ip.0.to_le_bytes()]);
            match geo.call(key, || inputs.asdb.annotate(ip)) {
                Ok(ann) => {
                    h.attacker_asn = ann.asn;
                    h.attacker_cc = ann.country;
                }
                Err(_) => annotation_degraded += 1,
            }
        }
        if annotation_degraded > 0 {
            metrics.count("pivot.annotation_degraded", annotation_degraded);
        }
        let mut src_shard = MetricsShard::default();
        geo.record(&mut src_shard);
        metrics.merge(src_shard);

        // ---- degraded-mode accounting ---------------------------------
        degraded.sort();
        for d in &degraded {
            *funnel.degraded.entry(d.stage.clone()).or_insert(0) += 1;
        }

        // ---- dedup + ordering -----------------------------------------
        let hijacked = dedup_hijacks(hijacked);
        let hijacked_set: BTreeSet<_> = hijacked.iter().map(|h| h.domain.clone()).collect();
        let targeted = dedup_targets(targeted, &hijacked_set);
        for h in &hijacked {
            *funnel
                .hijacks_by_type
                .entry(h.dtype.label().to_string())
                .or_insert(0) += 1;
        }

        Report {
            hijacked,
            targeted,
            degraded,
            funnel,
            timings: PipelineTimings::default(),
        }
    }
}

/// Seed the funnel with population statistics: per-map and worst-per-domain
/// category histograms over the classified maps, plus the quarantine
/// counts from stage 0. Shared by the batch pipeline and the incremental
/// analyzer.
pub(crate) fn funnel_population(
    maps: &[DeploymentMap],
    patterns: &[Pattern],
    quarantined: BTreeMap<String, usize>,
) -> FunnelStats {
    let mut funnel = FunnelStats {
        quarantined,
        maps_total: maps.len(),
        ..FunnelStats::default()
    };
    // Maps arrive sorted by domain, so a domain's periods are adjacent:
    // comparing against the previous map's domain replaces interning,
    // and the handful of category labels are tallied through
    // &'static str keys — no per-map hashing or String allocation.
    let rank = |c: &str| match c {
        "transient" => 3,
        "noisy" => 2,
        "transition" => 1,
        _ => 0,
    };
    let mut map_cats: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut domain_cats: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut prev_domain: Option<&DomainName> = None;
    let mut worst: &'static str = "stable";
    for (m, p) in maps.iter().zip(patterns) {
        let cat = p.category();
        *map_cats.entry(cat).or_insert(0) += 1;
        if matches!(p, Pattern::Transient { .. }) {
            funnel.transient_maps += 1;
        }
        if prev_domain != Some(&m.domain) {
            if prev_domain.is_some() {
                *domain_cats.entry(worst).or_insert(0) += 1;
            }
            prev_domain = Some(&m.domain);
            worst = "stable";
            funnel.domains_total += 1;
        }
        if rank(cat) > rank(worst) {
            worst = cat;
        }
    }
    if prev_domain.is_some() {
        *domain_cats.entry(worst).or_insert(0) += 1;
    }
    for (cat, n) in map_cats {
        funnel.map_categories.insert(cat.to_string(), n);
    }
    for (cat, n) in domain_cats {
        funnel.domain_categories.insert(cat.to_string(), n);
    }
    funnel
}

/// Fold shortlist results into the funnel (candidate, anomalous-route and
/// per-reason prune counts). Shared by the batch pipeline and the
/// incremental analyzer.
pub(crate) fn apply_shortlist_funnel(
    funnel: &mut FunnelStats,
    shortlisted: &crate::shortlist::ShortlistOutcome,
) {
    funnel.shortlisted = shortlisted.candidates.len();
    funnel.truly_anomalous = shortlisted
        .candidates
        .iter()
        .filter(|c| c.via_anomalous_route)
        .count();
    for (reason, n) in shortlisted.prune_histogram() {
        funnel.pruned.insert(reason.label().to_string(), n);
    }
}

/// Run one work item, converting a panic into `None` so a poisoned
/// record cannot take down its worker (or the run). The caller counts
/// `None` under the `worker_panic` quarantine reason. The default panic
/// hook still prints to stderr; suppressing it globally would hide
/// panics from unrelated threads.
fn catch_item<T>(f: impl FnOnce() -> T) -> Option<T> {
    catch_unwind(AssertUnwindSafe(f)).ok()
}

/// Drop maps whose classification panicked (a `None` slot), keeping the
/// maps/patterns vectors aligned for the shortlist. Returns the
/// filtered pair plus the number dropped; the zero-panic fast path
/// reuses both allocations untouched.
fn drop_panicked(
    maps: Vec<DeploymentMap>,
    patterns: Vec<Option<Pattern>>,
) -> (Vec<DeploymentMap>, Vec<Pattern>, usize) {
    debug_assert_eq!(maps.len(), patterns.len(), "patterns must parallel maps");
    let panicked = patterns.iter().filter(|p| p.is_none()).count();
    if panicked == 0 {
        return (maps, patterns.into_iter().flatten().collect(), 0);
    }
    let keep = maps.len() - panicked;
    let mut kept_maps = Vec::with_capacity(keep);
    let mut kept_patterns = Vec::with_capacity(keep);
    for (m, p) in maps.into_iter().zip(patterns) {
        if let Some(p) = p {
            kept_maps.push(m);
            kept_patterns.push(p);
        }
    }
    (kept_maps, kept_patterns, panicked)
}

/// Record one stage's point-in-time samples: wall time and item count as
/// `stage.<name>.*` gauges, the wall time into the shared `stage.wall_ms`
/// histogram, plus RSS (Linux) and the allocation delta since `alloc0`
/// (when [`CountingAlloc`](crate::metrics::CountingAlloc) is installed).
fn stage_sample(
    metrics: &mut MetricsRegistry,
    name: &str,
    items: usize,
    wall: std::time::Duration,
    alloc0: u64,
) {
    let ms = wall.as_secs_f64() * 1e3;
    metrics.gauge(&format!("stage.{name}.wall_ms"), ms);
    metrics.gauge(&format!("stage.{name}.items"), items as f64);
    metrics.observe("stage.wall_ms", ms);
    if let Some(kb) = metrics::rss_kb_now() {
        metrics.gauge(&format!("stage.{name}.rss_kb"), kb as f64);
    }
    if metrics::alloc_counting_active() {
        let delta = metrics::allocated_bytes_total().saturating_sub(alloc0);
        metrics.gauge(&format!("stage.{name}.alloc_bytes"), delta as f64);
    }
}

/// Below this many maps per worker, classification runs serially:
/// classifying a map is microseconds of column math, so thread spawn
/// plus join dominates until chunks are in the thousands.
const MIN_CLASSIFY_PER_WORKER: usize = 1024;

/// Below this many candidates per worker, inspection runs serially.
/// Inspection does real corroboration work per candidate, so the
/// break-even chunk is much smaller than classify's — but the typical
/// shortlist (single digits of candidates) must never pay thread spawn.
const MIN_INSPECT_PER_WORKER: usize = 32;

/// Chunk size for splitting `items` across `workers`, or `None` when the
/// stage should run serially: a single worker, or too few items for the
/// per-thread spawn cost to pay for itself (`min_per_worker` is the
/// stage-specific break-even point).
fn parallel_chunk(items: usize, workers: usize, min_per_worker: usize) -> Option<usize> {
    if workers <= 1 || items < 2 || items < workers.saturating_mul(min_per_worker) {
        return None;
    }
    Some(items.div_ceil(workers))
}

/// Mirror every [`FunnelStats`] field into the `funnel.*` counter
/// namespace. The mapping is exact and exhaustive — the
/// `tests/metrics.rs` reconciliation test asserts counter-for-field
/// equality against [`Report::funnel`], so a new funnel field must be
/// added here (and there) to compile the accounting loop shut.
fn record_funnel(metrics: &mut MetricsRegistry, funnel: &FunnelStats) {
    for (reason, n) in &funnel.quarantined {
        metrics.count(&format!("funnel.quarantined.{reason}"), *n as u64);
    }
    metrics.count("funnel.domains_total", funnel.domains_total as u64);
    metrics.count("funnel.maps_total", funnel.maps_total as u64);
    for (cat, n) in &funnel.domain_categories {
        metrics.count(&format!("funnel.domain_category.{cat}"), *n as u64);
    }
    for (cat, n) in &funnel.map_categories {
        metrics.count(&format!("funnel.map_category.{cat}"), *n as u64);
    }
    metrics.count("funnel.transient_maps", funnel.transient_maps as u64);
    metrics.count("funnel.shortlisted", funnel.shortlisted as u64);
    metrics.count("funnel.truly_anomalous", funnel.truly_anomalous as u64);
    for (reason, n) in &funnel.pruned {
        metrics.count(&format!("funnel.pruned.{reason}"), *n as u64);
    }
    metrics.count("funnel.dismissed_stale", funnel.dismissed_stale as u64);
    metrics.count("funnel.inconclusive", funnel.inconclusive as u64);
    for (stage, n) in &funnel.degraded {
        metrics.count(&format!("funnel.degraded.{stage}"), *n as u64);
    }
    for (t, n) in &funnel.hijacks_by_type {
        metrics.count(&format!("funnel.hijacks.{t}"), *n as u64);
    }
}

/// Run (or resume) one checkpointable stage.
///
/// While the chain is intact, a valid checkpoint is loaded instead of
/// computing; the first invalid stage breaks the chain, and every stage
/// from there on is computed and (re)written. Without a store this is
/// just `compute()`. Checkpoint events land in `shard`:
/// `checkpoint.loaded.<stage>` / `checkpoint.saved.<stage>` /
/// `checkpoint.invalid.<reason>` / `checkpoint.save_failed`.
fn run_stage<T, F>(
    store: &mut Option<&mut CheckpointStore>,
    fp: Option<&Fingerprint>,
    chain_intact: &mut bool,
    name: &str,
    shard: &mut MetricsShard,
    compute: F,
) -> T
where
    T: Serialize + DeserializeOwned,
    F: FnOnce() -> T,
{
    let Some(s) = store.as_deref_mut() else {
        return compute();
    };
    let fp = fp.expect("fingerprint accompanies store");
    if *chain_intact {
        match s.load::<T>(name, fp) {
            Ok(v) => {
                shard.count(&format!("checkpoint.loaded.{name}"), 1);
                s.resumed.push(name.to_string());
                return v;
            }
            Err(reason) => {
                shard.count(&format!("checkpoint.invalid.{}", reason.label()), 1);
                *chain_intact = false;
            }
        }
    }
    let v = compute();
    match s.save(name, fp, &v) {
        Ok(()) => shard.count(&format!("checkpoint.saved.{name}"), 1),
        Err(e) => {
            shard.count("checkpoint.save_failed", 1);
            eprintln!("warning: could not write checkpoint stage '{name}': {e}");
        }
    }
    s.computed.push(name.to_string());
    v
}

/// Input validation: reject observations the pipeline cannot analyze,
/// with a per-reason histogram, instead of panicking or silently
/// skipping them inside the stages.
///
/// Reasons (checked in this order; a record counts once):
/// * `out-of-window` — the scan date falls in no study period;
/// * `unrouted` — no origin AS (the map builder needs network identity);
/// * `unknown-cert` — the certificate id is absent from the analyst's
///   cert store, so nothing about the endpoint can be corroborated;
/// * `duplicate` — an exact repeat of a kept record.
///
/// Clean, sorted input is returned as `Cow::Borrowed` with an empty
/// histogram (zero copies on the fast path). Otherwise the surviving
/// records are re-sorted and deduplicated, restoring the ordering
/// contract of [`retrodns_scan::domain_observations`] for the stages
/// downstream.
pub fn quarantine<'a>(
    observations: &'a [DomainObservation],
    window: &StudyWindow,
    certs: &HashMap<CertId, Certificate>,
) -> (Cow<'a, [DomainObservation]>, BTreeMap<String, usize>) {
    quarantine_rows(observations, window, certs)
}

/// Stage-0 output, in whichever representation the input arrived.
enum KeptObs<'a> {
    /// Row path: the surviving records (borrowed when the input was
    /// already clean and sorted).
    Rows(Cow<'a, [DomainObservation]>),
    /// Columnar path: the store plus the kept-row selection in analysis
    /// order. `None` means every row, already sorted — the zero-copy
    /// fast path.
    Store {
        store: &'a ObservationStore,
        selection: Option<Vec<u32>>,
    },
}

impl KeptObs<'_> {
    fn len(&self) -> usize {
        match self {
            KeptObs::Rows(rows) => rows.len(),
            KeptObs::Store { store, selection } => {
                selection.as_ref().map_or(store.len(), |s| s.len())
            }
        }
    }
}

/// Full-`Ord` comparison of two store rows, matching the derived
/// [`DomainObservation`] ordering field for field. Domain order is
/// resolved through the dictionary (interned codes are first-seen, not
/// lexicographic — equal codes short-circuit the string compare);
/// `None` sentinels map back to `Option` ordering (`None` first) via
/// the store's `Option` accessors; certificate order compares resolved
/// [`CertId`] values, never dictionary codes.
fn cmp_store_rows(s: &ObservationStore, a: usize, b: usize) -> Ordering {
    let by_domain = if s.domain_code(a) == s.domain_code(b) {
        Ordering::Equal
    } else {
        s.domain_name(a).cmp(s.domain_name(b))
    };
    by_domain
        .then_with(|| s.date(a).cmp(&s.date(b)))
        .then_with(|| s.ip(a).cmp(&s.ip(b)))
        .then_with(|| s.asn(a).cmp(&s.asn(b)))
        .then_with(|| s.country(a).cmp(&s.country(b)))
        .then_with(|| s.cert_id(a).cmp(&s.cert_id(b)))
        .then_with(|| s.trusted(a).cmp(&s.trusted(b)))
}

/// [`quarantine`] restated over store columns: identical reasons,
/// identical ordering contract, but the survivors are returned as a row
/// *selection* into the store instead of cloned records — the columns
/// themselves never move. A clean, sorted store returns `None` (analyze
/// every row in place) with an empty histogram.
pub fn quarantine_store(
    store: &ObservationStore,
    window: &StudyWindow,
    certs: &HashMap<CertId, Certificate>,
) -> (Option<Vec<u32>>, BTreeMap<String, usize>) {
    let reject = |i: usize| -> Option<&'static str> {
        if window.period_of(store.date(i)).is_none() {
            Some("out-of-window")
        } else if store.asn(i).is_none() {
            Some("unrouted")
        } else if !certs.contains_key(&store.cert_id(i)) {
            Some("unknown-cert")
        } else {
            None
        }
    };

    let n = store.len();
    let clean = (0..n).all(|i| {
        reject(i).is_none() && (i == 0 || cmp_store_rows(store, i - 1, i) == Ordering::Less)
    });
    if clean {
        return (None, BTreeMap::new());
    }

    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    let mut kept: Vec<u32> = Vec::with_capacity(n);
    for i in 0..n {
        match reject(i) {
            Some(r) => *reasons.entry(r.to_string()).or_insert(0) += 1,
            None => kept.push(i as u32),
        }
    }
    // Stable sort + full-order dedup, mirroring the row path's
    // `sort` + `dedup` exactly (`Equal` under the full comparator means
    // field-for-field identical records).
    kept.sort_by(|&a, &b| cmp_store_rows(store, a as usize, b as usize));
    let before = kept.len();
    kept.dedup_by(|a, b| cmp_store_rows(store, *a as usize, *b as usize) == Ordering::Equal);
    if before > kept.len() {
        *reasons.entry("duplicate".to_string()).or_insert(0) += before - kept.len();
    }
    (Some(kept), reasons)
}

fn quarantine_rows<'a>(
    observations: &'a [DomainObservation],
    window: &StudyWindow,
    certs: &HashMap<CertId, Certificate>,
) -> (Cow<'a, [DomainObservation]>, BTreeMap<String, usize>) {
    let reject = |o: &DomainObservation| -> Option<&'static str> {
        if window.period_of(o.date).is_none() {
            Some("out-of-window")
        } else if o.asn.is_none() {
            Some("unrouted")
        } else if !certs.contains_key(&o.cert) {
            Some("unknown-cert")
        } else {
            None
        }
    };

    let clean = observations
        .iter()
        .enumerate()
        .all(|(i, o)| reject(o).is_none() && (i == 0 || observations[i - 1] < *o));
    if clean {
        return (Cow::Borrowed(observations), BTreeMap::new());
    }

    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    let mut kept: Vec<DomainObservation> = Vec::with_capacity(observations.len());
    for o in observations {
        match reject(o) {
            Some(r) => *reasons.entry(r.to_string()).or_insert(0) += 1,
            None => kept.push(o.clone()),
        }
    }
    kept.sort();
    let before = kept.len();
    kept.dedup();
    if before > kept.len() {
        *reasons.entry("duplicate".to_string()).or_insert(0) += before - kept.len();
    }
    (Cow::Owned(kept), reasons)
}

/// Aggregated stage-4 outcomes for a set of candidates (before the T1*
/// pass). Partials from parallel workers merge by concatenation, so the
/// struct doubles as the per-chunk accumulator — and as the `inspect`
/// stage's checkpoint payload.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct InspectionResults {
    /// Candidates concluded hijacked.
    pub hijacked: Vec<DetectedHijack>,
    /// Candidates concluded targeted but not hijacked.
    pub targeted: Vec<DetectedTarget>,
    /// Inconclusive candidates with the evidence retained for the T1*
    /// pass: (candidate, issuance day, certificate, sensitive name).
    pub inconclusive: Vec<(Candidate, Day, Option<CertId>, Option<DomainName>)>,
    /// Candidates dismissed for stale certificates.
    pub dismissed_stale: usize,
    /// Candidates whose verdict degraded: a corroboration source stayed
    /// unavailable past its retry budget.
    #[serde(default)]
    pub degraded: Vec<DegradedVerdict>,
    /// Candidates skipped because their inspection panicked; the
    /// pipeline quarantines them under `worker_panic`.
    #[serde(default)]
    pub worker_panics: usize,
}

/// Deduplicate hijacks by domain: earliest evidence wins the date; types,
/// IPs and nameservers merge; corroboration flags OR together.
fn dedup_hijacks(hijacks: Vec<DetectedHijack>) -> Vec<DetectedHijack> {
    let mut by_domain: BTreeMap<DomainName, DetectedHijack> = BTreeMap::new();
    for h in hijacks {
        match by_domain.get_mut(&h.domain) {
            None => {
                by_domain.insert(h.domain.clone(), h);
            }
            Some(existing) => {
                existing.first_evidence = existing.first_evidence.min(h.first_evidence);
                existing.pdns_corroborated |= h.pdns_corroborated;
                existing.ct_corroborated |= h.ct_corroborated;
                existing.geo_implausible |= h.geo_implausible;
                if existing.malicious_cert.is_none() {
                    existing.malicious_cert = h.malicious_cert;
                }
                if existing.sub.is_none() {
                    existing.sub = h.sub;
                }
                for ip in h.attacker_ips {
                    if !existing.attacker_ips.contains(&ip) {
                        existing.attacker_ips.push(ip);
                    }
                }
                for ns in h.attacker_ns {
                    if !existing.attacker_ns.contains(&ns) {
                        existing.attacker_ns.push(ns);
                    }
                }
            }
        }
    }
    by_domain.into_values().collect()
}

/// Deduplicate targets by domain and drop any already concluded hijacked.
fn dedup_targets(
    targets: Vec<DetectedTarget>,
    hijacked: &BTreeSet<DomainName>,
) -> Vec<DetectedTarget> {
    let mut by_domain: BTreeMap<DomainName, DetectedTarget> = BTreeMap::new();
    for t in targets {
        if hijacked.contains(&t.domain) {
            continue;
        }
        by_domain.entry(t.domain.clone()).or_insert(t);
    }
    by_domain.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortlist::ShortlistConfig;
    use retrodns_sim::{SimConfig, World};

    /// End-to-end: the pipeline recovers most planted hijacks with no
    /// false positives among benign domains.
    #[test]
    fn pipeline_recovers_planted_attacks() {
        let world = World::build(SimConfig::small(0xBEEF));
        let dataset = world.scan();
        let observations = world.observations(&dataset);
        let pipeline = Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            ..PipelineConfig::default()
        });
        let report = pipeline.run(&AnalystInputs {
            observations: &observations,
            asdb: &world.geo.asdb,
            certs: &world.certs,
            pdns: &world.pdns,
            crtsh: &world.crtsh,
            dnssec: Some(&world.dnssec),
            source_faults: None,
        });

        let truth_hijacked: BTreeSet<_> = world
            .ground_truth
            .hijacked
            .iter()
            .map(|h| h.domain.clone())
            .collect();
        let detected: BTreeSet<_> = report.hijacked_domains().into_iter().collect();

        // Recall: at least two thirds of planted hijacks recovered.
        let tp = detected.intersection(&truth_hijacked).count();
        assert!(
            tp * 3 >= truth_hijacked.len() * 2,
            "recall too low: {tp}/{} (detected {:?})",
            truth_hijacked.len(),
            detected
        );

        // Precision: every *hijacked* verdict is a truly attacked domain
        // (hijacked or at least staged).
        for h in &report.hijacked {
            assert!(
                world.ground_truth.is_attacked(&h.domain),
                "false positive hijack: {} ({:?})",
                h.domain,
                h.dtype
            );
        }

        // The funnel monotonically narrows.
        let f = &report.funnel;
        assert!(f.transient_maps >= f.shortlisted);
        assert!(
            f.shortlisted
                >= report.hijacked.len()
                    - f.hijacks_by_type.get("P-IP").copied().unwrap_or(0)
                    - f.hijacks_by_type.get("P-NS").copied().unwrap_or(0)
        );
        // Population is overwhelmingly stable.
        let stable = f.domain_categories.get("stable").copied().unwrap_or(0);
        assert!(stable as f64 > 0.9 * f.domains_total as f64);
    }

    /// Ablations: disabling shortlist heuristics can only widen the
    /// candidate set.
    #[test]
    fn ablation_widens_shortlist() {
        let world = World::build(SimConfig::small(0xF00D));
        let dataset = world.scan();
        let observations = world.observations(&dataset);
        let base = Pipeline::new(PipelineConfig::default());
        let loose = Pipeline::new(PipelineConfig {
            shortlist: ShortlistConfig {
                disable_org_check: true,
                disable_geo_check: true,
                disable_visibility_check: true,
                disable_repeat_check: true,
                disable_sensitive_filter: true,
                ..ShortlistConfig::default()
            },
            ..PipelineConfig::default()
        });
        let inputs = AnalystInputs {
            observations: &observations,
            asdb: &world.geo.asdb,
            certs: &world.certs,
            pdns: &world.pdns,
            crtsh: &world.crtsh,
            dnssec: Some(&world.dnssec),
            source_faults: None,
        };
        let r1 = base.run(&inputs);
        let r2 = loose.run(&inputs);
        assert!(r2.funnel.shortlisted >= r1.funnel.shortlisted);
        assert!(r2.funnel.pruned.values().sum::<usize>() == 0);
    }

    /// A panicking work item becomes `None` instead of killing the run.
    #[test]
    fn catch_item_converts_panics() {
        assert_eq!(catch_item(|| 5), Some(5));
        assert_eq!(catch_item::<i32>(|| panic!("poisoned record")), None);
    }

    /// Dropping panicked classifications keeps maps and patterns
    /// aligned and counts exactly the panicked slots.
    #[test]
    fn drop_panicked_keeps_vectors_aligned() {
        use retrodns_types::Period;
        let mk = |name: &str| DeploymentMap {
            domain: name.parse().unwrap(),
            period: Period {
                id: 0,
                start: Day(0),
                end: Day(7),
            },
            deployments: Vec::new(),
            dates_present: Vec::new(),
            expected_scans: 0,
        };
        let maps = vec![mk("a.com"), mk("b.com"), mk("c.com")];
        let noisy = classify(&maps[0], &ClassifyConfig::default());
        let patterns = vec![Some(noisy.clone()), None, Some(noisy.clone())];

        let (kept_maps, kept_patterns, dropped) = drop_panicked(maps.clone(), patterns);
        assert_eq!(dropped, 1);
        assert_eq!(kept_maps.len(), kept_patterns.len());
        assert_eq!(
            kept_maps
                .iter()
                .map(|m| m.domain.as_str())
                .collect::<Vec<_>>(),
            ["a.com", "c.com"]
        );

        // Zero-panic fast path keeps everything.
        let patterns = vec![Some(noisy.clone()), Some(noisy.clone()), Some(noisy)];
        let (kept_maps, kept_patterns, dropped) = drop_panicked(maps, patterns);
        assert_eq!(dropped, 0);
        assert_eq!(kept_maps.len(), 3);
        assert_eq!(kept_patterns.len(), 3);
    }
}
