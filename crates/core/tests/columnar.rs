//! Golden equivalence: the pipeline must produce byte-identical report
//! JSON whether its observations arrive as the legacy row vector (the
//! correctness oracle) or as a columnar `ObservationStore`, at any
//! worker count, on clean and on dirty inputs.

use retrodns_core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns_scan::DomainObservation;
use retrodns_sim::{SimConfig, World};
use retrodns_store::ObservationStore;

fn report_json(
    world: &World,
    view: &dyn retrodns_store::ObservationView,
    workers: usize,
) -> String {
    let pipeline = Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        workers,
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&AnalystInputs {
        observations: view,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    });
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn columnar_report_is_byte_identical_to_rows() {
    let world = World::build(SimConfig::small(0xC01));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let store = ObservationStore::from_observations(&observations).expect("store builds");
    assert_eq!(store.len(), observations.len());

    let golden = report_json(&world, &observations, 1);
    assert!(golden.contains("\"hijacked\""));
    for workers in [1, 2, 8] {
        assert_eq!(
            golden,
            report_json(&world, &store, workers),
            "columnar report diverged from the row report at {workers} workers"
        );
        assert_eq!(
            golden,
            report_json(&world, &observations, workers),
            "row report not worker-invariant at {workers} workers"
        );
    }
}

#[test]
fn columnar_report_matches_rows_on_dirty_input() {
    let world = World::build(SimConfig::small(0xD1));
    let dataset = world.scan();
    let mut observations = world.observations(&dataset);

    // Damage the input identically for both representations: duplicates,
    // an unrouted record, an out-of-window record, and a global shuffle.
    let dup = observations[3].clone();
    observations.push(dup);
    let mut unrouted = observations[5].clone();
    unrouted.asn = None;
    observations.push(unrouted);
    let mut stray = observations[7].clone();
    stray.date = retrodns_types::Day(u16::MAX as u32 - 1);
    observations.push(stray);
    observations.reverse();

    let store = ObservationStore::from_observations(&observations).expect("store builds");
    let golden = report_json(&world, &observations, 1);
    assert!(golden.contains("\"quarantined\""));
    for workers in [1, 2, 8] {
        assert_eq!(
            golden,
            report_json(&world, &store, workers),
            "dirty columnar report diverged at {workers} workers"
        );
    }
}

/// The store's fingerprint must equal the row fold over the same data —
/// a checkpoint written by one representation validates under the other.
#[test]
fn fingerprints_transfer_between_representations() {
    let world = World::build(SimConfig::small(0xF1));
    let dataset = world.scan();
    let observations: Vec<DomainObservation> = world.observations(&dataset);
    let store = ObservationStore::from_observations(&observations).unwrap();
    assert_eq!(
        retrodns_core::checkpoint::inputs_fingerprint(&observations),
        store.fingerprint()
    );
}
