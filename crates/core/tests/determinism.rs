//! The parallel execution model must be invisible in the output: a
//! `Pipeline::run` over the same inputs produces a byte-identical report
//! regardless of the `workers` knob. This is the guarantee that lets the
//! experiments (and any downstream cache keyed on report JSON) treat
//! worker count as a pure performance setting.

use retrodns_core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns_sim::{SimConfig, World};

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let world = World::build(SimConfig::small(0xD15EA5E));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let inputs = AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
    };

    let run = |workers: usize| {
        let pipeline = Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        });
        serde_json::to_string(&pipeline.run(&inputs)).expect("report serializes")
    };

    let serial = run(1);
    assert!(!serial.is_empty());
    for workers in [2, 8] {
        let parallel = run(workers);
        assert_eq!(
            serial, parallel,
            "report JSON differs between workers=1 and workers={workers}"
        );
    }
}

#[test]
fn maps_and_patterns_identical_across_worker_counts() {
    let world = World::build(SimConfig::small(0xCAFE));
    let dataset = world.scan();
    let observations = world.observations(&dataset);

    let run = |workers: usize| {
        Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        })
        .maps_and_patterns(&observations)
    };

    let (maps1, patterns1) = run(1);
    assert!(!maps1.is_empty());
    for workers in [2, 8] {
        let (maps_n, patterns_n) = run(workers);
        assert_eq!(maps1, maps_n, "maps differ at workers={workers}");
        assert_eq!(
            patterns1, patterns_n,
            "patterns differ at workers={workers}"
        );
    }
}
