//! The parallel execution model must be invisible in the output: a
//! `Pipeline::run` over the same inputs produces a byte-identical report
//! regardless of the `workers` knob. This is the guarantee that lets the
//! experiments (and any downstream cache keyed on report JSON) treat
//! worker count as a pure performance setting.

//!
//! Checkpointing extends the same guarantee: a run killed partway and
//! resumed from its stage snapshots must reproduce the uninterrupted
//! report byte for byte, even with faulted inputs in play.

use retrodns_core::checkpoint::STAGE_NAMES;
use retrodns_core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns_core::CheckpointStore;
use retrodns_sim::{FaultPlan, SimConfig, World};

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let world = World::build(SimConfig::small(0xD15EA5E));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let inputs = AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    };

    let run = |workers: usize| {
        let pipeline = Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        });
        serde_json::to_string(&pipeline.run(&inputs)).expect("report serializes")
    };

    let serial = run(1);
    assert!(!serial.is_empty());
    for workers in [2, 8] {
        let parallel = run(workers);
        assert_eq!(
            serial, parallel,
            "report JSON differs between workers=1 and workers={workers}"
        );
    }
}

#[test]
fn maps_and_patterns_identical_across_worker_counts() {
    let world = World::build(SimConfig::small(0xCAFE));
    let dataset = world.scan();
    let observations = world.observations(&dataset);

    let run = |workers: usize| {
        Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        })
        .maps_and_patterns(&observations)
    };

    let (maps1, patterns1) = run(1);
    assert!(!maps1.is_empty());
    for workers in [2, 8] {
        let (maps_n, patterns_n) = run(workers);
        assert_eq!(maps1, maps_n, "maps differ at workers={workers}");
        assert_eq!(
            patterns1, patterns_n,
            "patterns differ at workers={workers}"
        );
    }
}

/// Worker-count invariance must also hold on deterministically damaged
/// inputs: the quarantine layer and every stage behind it stay
/// byte-identical across the `workers` knob under an active fault plan.
#[test]
fn faulted_report_is_byte_identical_across_worker_counts() {
    let world = World::build(SimConfig::small(0xFA_017));
    let damaged = FaultPlan::all(0xFA_017).apply_world(&world);
    let inputs = AnalystInputs {
        observations: &damaged.observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &damaged.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    };

    let run = |workers: usize| {
        let pipeline = Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        });
        serde_json::to_string(&pipeline.run(&inputs)).expect("report serializes")
    };

    let serial = run(1);
    // The fault plan must actually have bitten: records were quarantined.
    assert!(
        serial.contains("\"unknown-cert\""),
        "fault plan produced no quarantined records"
    );
    for workers in [2, 8] {
        assert_eq!(
            serial,
            run(workers),
            "faulted report differs between workers=1 and workers={workers}"
        );
    }
}

/// Kill-and-resume equivalence: interrupting a checkpointed run after
/// any stage and resuming from the surviving snapshots yields the
/// uninterrupted run's report byte for byte.
#[test]
fn resumed_report_is_byte_identical_to_uninterrupted_run() {
    let world = World::build(SimConfig::small(0x2E5_04E));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let inputs = AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    };
    let pipeline = Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        workers: 2,
        ..PipelineConfig::default()
    });
    let uninterrupted = serde_json::to_string(&pipeline.run(&inputs)).unwrap();

    let dir = std::env::temp_dir().join(format!(
        "retrodns-determinism-resume-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = CheckpointStore::open(&dir).expect("open checkpoint dir");

    // Full checkpointed run: everything computed, nothing resumed.
    let full = serde_json::to_string(&pipeline.run_resumable(&inputs, &mut store)).unwrap();
    assert_eq!(uninterrupted, full, "checkpointing changed the report");
    assert_eq!(store.computed.len(), STAGE_NAMES.len());

    // Emulate a kill after each stage boundary: delete the snapshots of
    // every later stage, then resume. ("killed after classify" is i == 2:
    // maps + classify survive on disk, shortlist + inspect are gone.)
    for i in 1..=STAGE_NAMES.len() {
        for stage in &STAGE_NAMES[i..] {
            std::fs::remove_file(store.payload_path(stage)).expect("delete payload");
            std::fs::remove_file(store.meta_path(stage)).expect("delete meta");
        }
        let resumed = serde_json::to_string(&pipeline.run_resumable(&inputs, &mut store)).unwrap();
        assert_eq!(
            uninterrupted, resumed,
            "resume after stage {i} diverged from the uninterrupted run"
        );
        assert_eq!(store.resumed, STAGE_NAMES[..i].to_vec());
        assert_eq!(store.computed, STAGE_NAMES[i..].to_vec());
    }

    // A corrupted snapshot mid-chain invalidates itself and everything
    // downstream, and the resumed report still matches.
    let path = store.payload_path("classify");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let resumed = serde_json::to_string(&pipeline.run_resumable(&inputs, &mut store)).unwrap();
    assert_eq!(
        uninterrupted, resumed,
        "resume over a corrupted checkpoint diverged"
    );
    assert_eq!(store.resumed, vec!["maps"]);
    assert_eq!(store.computed, vec!["classify", "shortlist", "inspect"]);

    let _ = std::fs::remove_dir_all(&dir);
}
