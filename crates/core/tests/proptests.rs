//! Property-based tests for deployment-map construction, pattern
//! classification over arbitrary observation sets, and checkpoint
//! corruption detection.

use proptest::prelude::*;
use retrodns_cert::CertId;
use retrodns_core::checkpoint::{CheckpointStore, Fingerprint};
use retrodns_core::classify::{classify, ClassifyConfig};
use retrodns_core::map::MapBuilder;
use retrodns_scan::DomainObservation;
use retrodns_types::{Asn, Day, DomainName, Ipv4Addr, StudyWindow};
use std::sync::atomic::{AtomicUsize, Ordering};

fn arb_observation() -> impl Strategy<Value = DomainObservation> {
    (
        0u8..4,    // domain index
        0u32..220, // scan week
        0u32..40,  // ip
        0u32..6,   // asn index
        0u8..4,    // country index
        0u64..10,  // cert
        any::<bool>(),
    )
        .prop_map(|(dom, week, ip, asn, cc, cert, trusted)| {
            const CCS: [&str; 4] = ["KG", "NL", "DE", "US"];
            DomainObservation {
                domain: format!("dom{dom}.example{dom}.com").parse().unwrap(),
                date: Day(week * 7),
                ip: Ipv4Addr(ip),
                asn: Some(Asn(100 + asn)),
                country: CCS[cc as usize].parse().ok(),
                cert: CertId(cert),
                trusted,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural invariants of every built map:
    /// deployments are date-ordered runs of a single ASN, each date lies
    /// within the map's period, and per-ASN runs never overlap in time.
    #[test]
    fn map_builder_invariants(observations in prop::collection::vec(arb_observation(), 0..200)) {
        let builder = MapBuilder::new(StudyWindow::default());
        let maps = builder.build(&observations);
        for m in &maps {
            prop_assert!(!m.deployments.is_empty());
            let mut per_asn: std::collections::HashMap<Asn, Vec<(Day, Day)>> = Default::default();
            for d in &m.deployments {
                prop_assert!(d.first <= d.last);
                prop_assert!(!d.dates.is_empty());
                prop_assert_eq!(*d.dates.first().unwrap(), d.first);
                prop_assert_eq!(*d.dates.last().unwrap(), d.last);
                let mut sorted = d.dates.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(&sorted, &d.dates, "dates sorted unique");
                for date in &d.dates {
                    prop_assert!(m.period.contains(*date));
                }
                // Cert windows nest inside the deployment span.
                for (first, last) in d.cert_windows.values() {
                    prop_assert!(*first >= d.first && *last <= d.last);
                }
                per_asn.entry(d.asn).or_default().push((d.first, d.last));
            }
            for runs in per_asn.values_mut() {
                runs.sort();
                for w in runs.windows(2) {
                    prop_assert!(w[0].1 < w[1].0, "same-ASN runs must not overlap");
                }
            }
            // Visibility is a proper fraction.
            prop_assert!(m.visibility() >= 0.0 && m.visibility() <= 1.0 + 1e-9);
        }
    }

    /// Every observation is attributable to a deployment in its period.
    #[test]
    fn no_observation_is_lost(observations in prop::collection::vec(arb_observation(), 1..150)) {
        let builder = MapBuilder::new(StudyWindow::default());
        let maps = builder.build(&observations);
        for o in &observations {
            let Some(asn) = o.asn else { continue };
            let covered = maps.iter().any(|m| {
                m.domain == o.domain
                    && m.period.contains(o.date)
                    && m.deployments.iter().any(|d| {
                        d.asn == asn && d.dates.contains(&o.date) && d.ips.contains(&o.ip)
                    })
            });
            prop_assert!(covered, "lost observation {o:?}");
        }
    }

    /// Classification is total: every map yields exactly one category,
    /// and the label is consistent with the category.
    #[test]
    fn classification_total(observations in prop::collection::vec(arb_observation(), 0..200)) {
        let builder = MapBuilder::new(StudyWindow::default());
        let cfg = ClassifyConfig::default();
        for m in builder.build(&observations) {
            let p = classify(&m, &cfg);
            match p.category() {
                "stable" => prop_assert!(p.label().starts_with('S')),
                "transition" => prop_assert!(p.label().starts_with('X')),
                "transient" => prop_assert!(p.label().starts_with('T')),
                "noisy" => prop_assert_eq!(p.label(), "Noisy"),
                other => prop_assert!(false, "unknown category {other}"),
            }
        }
    }

    /// Observations are order-insensitive: shuffling the input changes
    /// nothing.
    #[test]
    fn build_is_order_insensitive(
        observations in prop::collection::vec(arb_observation(), 0..100),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let builder = MapBuilder::new(StudyWindow::default());
        let a = builder.build(&observations);
        let mut shuffled = observations.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let b = builder.build(&shuffled);
        prop_assert_eq!(a, b);
    }

    /// Any truncation or bit flip of a checkpoint payload file is
    /// detected by the payload hash: `load` refuses the damaged
    /// checkpoint (forcing a clean recompute) rather than resuming from
    /// garbage, and a re-save fully recovers.
    #[test]
    fn checkpoint_corruption_is_always_detected(
        payload in prop::collection::vec(any::<u64>(), 1..64),
        truncate in any::<bool>(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "retrodns-ckpt-prop-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let store = CheckpointStore::open(&dir).expect("open store");
        let fp = Fingerprint { config: 7, inputs: 13 };
        store.save("maps", &fp, &payload).expect("save");

        let path = store.payload_path("maps");
        let mut bytes = std::fs::read(&path).expect("read payload");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        if truncate {
            bytes.truncate(pos);
        } else {
            bytes[pos] ^= 1 << bit;
        }
        std::fs::write(&path, &bytes).expect("write damaged payload");

        let damaged = store.load::<Vec<u64>>("maps", &fp);
        prop_assert!(
            damaged.is_err(),
            "corruption went undetected ({} at byte {pos} of {})",
            if truncate { "truncation" } else { "bit flip" },
            bytes.len(),
        );
        // The invalid stage breaks the chain, so a resumed run
        // recomputes from scratch...
        prop_assert!(store.valid_chain(&fp).is_empty());
        // ...and re-saving restores a loadable checkpoint.
        store.save("maps", &fp, &payload).expect("re-save");
        prop_assert_eq!(store.load::<Vec<u64>>("maps", &fp).unwrap(), payload);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Shard-merge equivalence: the range-sharded parallel build is
    /// byte-for-byte the serial reference for arbitrary observation
    /// sets at every worker count 1–16 — including the degenerate
    /// shapes (empty input, and a single domain collapsing all work
    /// into one shard with the rest empty).
    #[test]
    fn parallel_build_equals_serial(
        observations in prop::collection::vec(arb_observation(), 0..200),
        workers in 1usize..=16,
        single_domain in any::<bool>(),
    ) {
        let mut observations = observations;
        if single_domain {
            // One domain, many dates: every cut lands on the same key,
            // so one shard owns everything and the others are empty.
            let dom: DomainName = "only.example.com".parse().unwrap();
            for o in &mut observations {
                o.domain = dom.clone();
            }
        }
        let mut builder = MapBuilder::new(StudyWindow::default());
        // Disable the adaptive serial fallback so small generated sets
        // still exercise the sharded code path.
        builder.min_obs_per_worker = 0;
        let serial = builder.build(&observations);
        let parallel = builder.build_parallel(&observations, workers);
        prop_assert_eq!(serial, parallel, "sharded build diverged at workers={}", workers);
    }

    /// A domain name never appears in a map it does not own.
    #[test]
    fn maps_do_not_mix_domains(observations in prop::collection::vec(arb_observation(), 0..150)) {
        let builder = MapBuilder::new(StudyWindow::default());
        let maps = builder.build(&observations);
        let mut seen: std::collections::HashSet<(DomainName, usize)> = Default::default();
        for m in &maps {
            prop_assert!(
                seen.insert((m.domain.clone(), m.period.id)),
                "duplicate map for {} period {}",
                m.domain,
                m.period.id
            );
        }
    }
}
