//! DNS record types and data.
//!
//! Only the three record types the methodology touches are modelled: `A`
//! (the redirection target — where hijacked traffic lands), `NS` (the
//! delegation — what the registrar-level attacker rewrites), and `TXT`
//! (the ACME DNS-01 challenge channel).

use retrodns_types::{DomainName, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Record type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Nameserver delegation record.
    Ns,
    /// Free-text record (ACME challenges, SPF, …).
    Txt,
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Txt => "TXT",
        })
    }
}

/// Record data (the RDATA field).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// A nameserver hostname.
    Ns(DomainName),
    /// A text value.
    Txt(String),
}

impl RecordData {
    /// The type tag this data belongs under.
    pub fn rtype(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Txt(_) => RecordType::Txt,
        }
    }

    /// The address, if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RecordData::A(ip) => Some(*ip),
            _ => None,
        }
    }

    /// The nameserver hostname, if this is an NS record.
    pub fn as_ns(&self) -> Option<&DomainName> {
        match self {
            RecordData::Ns(n) => Some(n),
            _ => None,
        }
    }

    /// The text value, if this is a TXT record.
    pub fn as_txt(&self) -> Option<&str> {
        match self {
            RecordData::Txt(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(ip) => write!(f, "{ip}"),
            RecordData::Ns(n) => write!(f, "{n}"),
            RecordData::Txt(t) => write!(f, "\"{t}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_tags_match() {
        assert_eq!(
            RecordData::A("1.2.3.4".parse().unwrap()).rtype(),
            RecordType::A
        );
        assert_eq!(
            RecordData::Ns("ns1.example.com".parse().unwrap()).rtype(),
            RecordType::Ns
        );
        assert_eq!(RecordData::Txt("x".into()).rtype(), RecordType::Txt);
    }

    #[test]
    fn accessors_are_type_safe() {
        let a = RecordData::A("1.2.3.4".parse().unwrap());
        assert!(a.as_a().is_some());
        assert!(a.as_ns().is_none());
        assert!(a.as_txt().is_none());
        let ns = RecordData::Ns("ns1.example.com".parse().unwrap());
        assert!(ns.as_ns().is_some());
        assert!(ns.as_a().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RecordType::Ns.to_string(), "NS");
        assert_eq!(RecordData::Txt("v=spf1".into()).to_string(), "\"v=spf1\"");
        assert_eq!(
            RecordData::A("8.8.8.8".parse().unwrap()).to_string(),
            "8.8.8.8"
        );
    }
}
