//! Registrars, registrant accounts, and the authorization model.
//!
//! §3 "Develop Capability": the attacker obtains the ability to modify a
//! domain's delegation via one of three paths — (a) compromising the
//! registrant's account credentials, (b) compromising the registrar, or
//! (c) compromising the registry itself. This module models those paths as
//! an explicit authorization check so the simulator cannot "accidentally"
//! hijack a domain it has no capability for: every delegation update in
//! [`crate::DnsDb`] goes through [`RegistrarRegistry::authorize`].

use retrodns_types::{Day, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a registrar.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RegistrarId(pub u16);

impl fmt::Display for RegistrarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "registrar:{}", self.0)
    }
}

/// Who is attempting a registry change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Actor {
    /// The legitimate registrant of the named domain.
    Owner,
    /// An attacker holding stolen credentials for the domain's registrant
    /// account (attack path (a)).
    StolenCredentials(DomainName),
    /// An attacker who compromised an entire registrar (attack path (b)) —
    /// can modify *any* domain administered by that registrar.
    CompromisedRegistrar(RegistrarId),
    /// An attacker who compromised a TLD registry (attack path (c)) — can
    /// modify any domain under that TLD or registry suffix.
    CompromisedRegistry(String),
}

/// Authorization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The domain has no registration on file.
    UnknownDomain(DomainName),
    /// The actor's capability does not extend to this domain.
    NotAuthorized,
    /// A registry lock is in effect and the actor is not the registry.
    RegistryLocked(DomainName),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownDomain(d) => write!(f, "no registration on file for {d}"),
            AuthError::NotAuthorized => write!(f, "actor lacks capability for this domain"),
            AuthError::RegistryLocked(d) => write!(f, "{d} is registry-locked"),
        }
    }
}

impl std::error::Error for AuthError {}

/// One domain's registration metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// The administering registrar.
    pub registrar: RegistrarId,
    /// Registry lock: changes require out-of-band registry confirmation
    /// (the mitigation §7.2 recommends). When set, neither stolen
    /// credentials nor a compromised registrar suffices.
    pub registry_locked: bool,
    /// Day the domain was registered (for bookkeeping/reports).
    pub registered_on: Day,
}

/// The registration database across all registrars.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegistrarRegistry {
    registrations: HashMap<DomainName, Registration>,
    registrar_names: HashMap<RegistrarId, String>,
}

impl RegistrarRegistry {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a registrar's display name.
    pub fn add_registrar(&mut self, id: RegistrarId, name: &str) -> &mut Self {
        self.registrar_names.insert(id, name.to_string());
        self
    }

    /// Record a domain registration.
    pub fn register_domain(
        &mut self,
        domain: DomainName,
        registrar: RegistrarId,
        registered_on: Day,
    ) -> &mut Self {
        self.registrations.insert(
            domain,
            Registration {
                registrar,
                registry_locked: false,
                registered_on,
            },
        );
        self
    }

    /// Enable or disable the registry lock for a domain.
    pub fn set_registry_lock(
        &mut self,
        domain: &DomainName,
        locked: bool,
    ) -> Result<(), AuthError> {
        self.registrations
            .get_mut(domain)
            .map(|r| r.registry_locked = locked)
            .ok_or_else(|| AuthError::UnknownDomain(domain.clone()))
    }

    /// The registration record for a domain.
    pub fn registration(&self, domain: &DomainName) -> Option<&Registration> {
        self.registrations.get(domain)
    }

    /// Registrar display name.
    pub fn registrar_name(&self, id: RegistrarId) -> &str {
        self.registrar_names
            .get(&id)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// May `actor` change the delegation of `domain`?
    ///
    /// * `Owner` — always (it is their domain), unless registry-locked
    ///   changes are modelled as requiring manual confirmation; the lock
    ///   here blocks only *illegitimate* paths, since the owner completes
    ///   the out-of-band step by definition.
    /// * `StolenCredentials(d)` — only for exactly `d`, and only if not
    ///   registry-locked.
    /// * `CompromisedRegistrar(r)` — any domain administered by `r`, unless
    ///   registry-locked.
    /// * `CompromisedRegistry(suffix)` — any domain under `suffix`
    ///   (lock offers no protection: the registry *is* the lock).
    pub fn authorize(&self, actor: &Actor, domain: &DomainName) -> Result<(), AuthError> {
        let reg = self
            .registrations
            .get(domain)
            .ok_or_else(|| AuthError::UnknownDomain(domain.clone()))?;
        match actor {
            Actor::Owner => Ok(()),
            Actor::StolenCredentials(d) => {
                if d != domain {
                    Err(AuthError::NotAuthorized)
                } else if reg.registry_locked {
                    Err(AuthError::RegistryLocked(domain.clone()))
                } else {
                    Ok(())
                }
            }
            Actor::CompromisedRegistrar(r) => {
                if *r != reg.registrar {
                    Err(AuthError::NotAuthorized)
                } else if reg.registry_locked {
                    Err(AuthError::RegistryLocked(domain.clone()))
                } else {
                    Ok(())
                }
            }
            Actor::CompromisedRegistry(suffix) => {
                let under =
                    domain.as_str() == suffix || domain.as_str().ends_with(&format!(".{suffix}"));
                if under {
                    Ok(())
                } else {
                    Err(AuthError::NotAuthorized)
                }
            }
        }
    }

    /// All domains administered by a registrar (the blast radius of a
    /// registrar compromise).
    pub fn domains_of_registrar(&self, id: RegistrarId) -> Vec<&DomainName> {
        let mut v: Vec<&DomainName> = self
            .registrations
            .iter()
            .filter(|(_, r)| r.registrar == id)
            .map(|(d, _)| d)
            .collect();
        v.sort();
        v
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// True if no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn registry() -> RegistrarRegistry {
        let mut r = RegistrarRegistry::new();
        r.add_registrar(RegistrarId(1), "Key-Systems");
        r.add_registrar(RegistrarId(2), "OtherReg");
        r.register_domain(d("mfa.gov.kg"), RegistrarId(1), Day(0));
        r.register_domain(d("invest.gov.kg"), RegistrarId(1), Day(0));
        r.register_domain(d("example.com"), RegistrarId(2), Day(0));
        r
    }

    #[test]
    fn owner_is_always_authorized() {
        let r = registry();
        assert!(r.authorize(&Actor::Owner, &d("mfa.gov.kg")).is_ok());
    }

    #[test]
    fn stolen_credentials_scoped_to_one_domain() {
        let r = registry();
        let actor = Actor::StolenCredentials(d("mfa.gov.kg"));
        assert!(r.authorize(&actor, &d("mfa.gov.kg")).is_ok());
        assert_eq!(
            r.authorize(&actor, &d("invest.gov.kg")),
            Err(AuthError::NotAuthorized)
        );
    }

    #[test]
    fn compromised_registrar_reaches_all_its_domains() {
        let r = registry();
        let actor = Actor::CompromisedRegistrar(RegistrarId(1));
        assert!(r.authorize(&actor, &d("mfa.gov.kg")).is_ok());
        assert!(r.authorize(&actor, &d("invest.gov.kg")).is_ok());
        assert_eq!(
            r.authorize(&actor, &d("example.com")),
            Err(AuthError::NotAuthorized)
        );
        assert_eq!(r.domains_of_registrar(RegistrarId(1)).len(), 2);
    }

    #[test]
    fn compromised_registry_reaches_suffix() {
        let r = registry();
        let actor = Actor::CompromisedRegistry("gov.kg".into());
        assert!(r.authorize(&actor, &d("mfa.gov.kg")).is_ok());
        assert_eq!(
            r.authorize(&actor, &d("example.com")),
            Err(AuthError::NotAuthorized)
        );
    }

    #[test]
    fn registry_lock_blocks_credential_and_registrar_paths() {
        let mut r = registry();
        r.set_registry_lock(&d("mfa.gov.kg"), true).unwrap();
        assert_eq!(
            r.authorize(&Actor::StolenCredentials(d("mfa.gov.kg")), &d("mfa.gov.kg")),
            Err(AuthError::RegistryLocked(d("mfa.gov.kg")))
        );
        assert_eq!(
            r.authorize(
                &Actor::CompromisedRegistrar(RegistrarId(1)),
                &d("mfa.gov.kg")
            ),
            Err(AuthError::RegistryLocked(d("mfa.gov.kg")))
        );
        // Registry compromise bypasses the lock; owner unaffected.
        assert!(r
            .authorize(
                &Actor::CompromisedRegistry("gov.kg".into()),
                &d("mfa.gov.kg")
            )
            .is_ok());
        assert!(r.authorize(&Actor::Owner, &d("mfa.gov.kg")).is_ok());
    }

    #[test]
    fn unknown_domain_rejected() {
        let r = registry();
        assert_eq!(
            r.authorize(&Actor::Owner, &d("missing.org")),
            Err(AuthError::UnknownDomain(d("missing.org")))
        );
        let mut r = r;
        assert!(r.set_registry_lock(&d("missing.org"), true).is_err());
    }

    #[test]
    fn registrar_names() {
        let r = registry();
        assert_eq!(r.registrar_name(RegistrarId(1)), "Key-Systems");
        assert_eq!(r.registrar_name(RegistrarId(9)), "?");
        assert_eq!(r.len(), 3);
    }
}
