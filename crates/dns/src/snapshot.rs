//! Daily zone-file snapshots (the CAIDA-DZDB analog).
//!
//! TLD zone files record each domain's NS delegation once a day. §5.3 of
//! the paper shows why this is a poor hijack detector: delegations flipped
//! for less than a day fall between snapshots. Access is also partial —
//! the authors had zone files for only 3 of the 15 TLDs their victims
//! spanned; [`ZoneSnapshotArchive`] models that with an accessible-TLD
//! allowlist.
//!
//! Internally the archive stores *runs* of identical consecutive daily
//! snapshots rather than one entry per day, so archiving four years of
//! daily state for thousands of domains costs O(delegation changes), not
//! O(days). The query API is still day-granular.

use retrodns_types::{Day, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One run of identical daily snapshots: the delegation seen every day in
/// `[from, to]` inclusive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Run {
    from: Day,
    to: Day,
    nameservers: Vec<DomainName>,
}

/// A daily archive of TLD zone delegations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ZoneSnapshotArchive {
    /// TLD/public-suffix strings the analyst has zone access to.
    accessible: HashSet<String>,
    /// domain → runs sorted by `from`, non-overlapping.
    snapshots: HashMap<DomainName, Vec<Run>>,
}

impl ZoneSnapshotArchive {
    /// An archive with access to the given TLDs / public suffixes.
    pub fn with_access<I: IntoIterator<Item = String>>(suffixes: I) -> ZoneSnapshotArchive {
        ZoneSnapshotArchive {
            accessible: suffixes.into_iter().collect(),
            snapshots: HashMap::new(),
        }
    }

    /// Does the analyst have zone-file access for this domain's public
    /// suffix?
    pub fn has_access(&self, domain: &DomainName) -> bool {
        self.accessible.contains(domain.public_suffix())
    }

    /// Record the delegation seen in the daily snapshot on one day.
    /// Silently ignored for suffixes without access.
    pub fn record(&mut self, day: Day, domain: &DomainName, nameservers: &[DomainName]) {
        self.record_span(day, day, domain, nameservers);
    }

    /// Record that every daily snapshot in `[from, to]` (inclusive) showed
    /// the same delegation. Spans must be appended in chronological order
    /// per domain (the simulator walks time forward); a span contiguous
    /// with the previous run and carrying the same NS set is merged.
    pub fn record_span(
        &mut self,
        from: Day,
        to: Day,
        domain: &DomainName,
        nameservers: &[DomainName],
    ) {
        assert!(from <= to, "inverted snapshot span");
        if !self.has_access(domain) {
            return;
        }
        let runs = self.snapshots.entry(domain.clone()).or_default();
        if let Some(last) = runs.last_mut() {
            assert!(
                from > last.to,
                "snapshot spans must be appended chronologically without overlap"
            );
            if last.to + 1 == from && last.nameservers == nameservers {
                last.to = to;
                return;
            }
        }
        runs.push(Run {
            from,
            to,
            nameservers: nameservers.to_vec(),
        });
    }

    /// The delegation archived for `domain` on exactly `day`.
    pub fn delegation_on(&self, domain: &DomainName, day: Day) -> Option<&[DomainName]> {
        let runs = self.snapshots.get(domain)?;
        let idx = match runs.binary_search_by_key(&day, |r| r.from) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let run = &runs[idx];
        (day <= run.to).then_some(run.nameservers.as_slice())
    }

    /// Days on which the archived delegation includes `ns_host` — the
    /// query that decides whether a hijack was "visible in the zone".
    pub fn days_with_nameserver(&self, domain: &DomainName, ns_host: &DomainName) -> Vec<Day> {
        self.snapshots
            .get(domain)
            .map(|runs| {
                runs.iter()
                    .filter(|r| r.nameservers.contains(ns_host))
                    .flat_map(|r| (r.from.0..=r.to.0).map(Day))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All archived days for a domain.
    pub fn archived_days(&self, domain: &DomainName) -> Vec<Day> {
        self.snapshots
            .get(domain)
            .map(|runs| {
                runs.iter()
                    .flat_map(|r| (r.from.0..=r.to.0).map(Day))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of accessible suffixes.
    pub fn access_count(&self) -> usize {
        self.accessible.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn archive() -> ZoneSnapshotArchive {
        let mut a = ZoneSnapshotArchive::with_access(vec!["com".into(), "net".into(), "se".into()]);
        // pch.net-style: hijack NS visible in the zone exactly one day.
        for day in 0..30 {
            let ns = if day == 15 {
                vec![d("ns1.evil.ru")]
            } else {
                vec![d("ns1.pch.net")]
            };
            a.record(Day(day), &d("pch.net"), &ns);
        }
        // ccTLD without access: never retained.
        a.record(Day(0), &d("mfa.gov.kg"), &[d("ns1.infocom.kg")]);
        a
    }

    #[test]
    fn access_allowlist() {
        let a = archive();
        assert!(a.has_access(&d("pch.net")));
        assert!(a.has_access(&d("netnod.se")));
        assert!(!a.has_access(&d("mfa.gov.kg")));
        assert_eq!(a.access_count(), 3);
    }

    #[test]
    fn inaccessible_tld_records_are_dropped() {
        let a = archive();
        assert!(a.delegation_on(&d("mfa.gov.kg"), Day(0)).is_none());
        assert!(a.archived_days(&d("mfa.gov.kg")).is_empty());
    }

    #[test]
    fn one_day_hijack_visible_exactly_once() {
        let a = archive();
        assert_eq!(
            a.days_with_nameserver(&d("pch.net"), &d("ns1.evil.ru")),
            vec![Day(15)]
        );
        assert_eq!(
            a.days_with_nameserver(&d("pch.net"), &d("ns1.pch.net"))
                .len(),
            29
        );
    }

    #[test]
    fn delegation_on_exact_day() {
        let a = archive();
        assert_eq!(
            a.delegation_on(&d("pch.net"), Day(15)).unwrap(),
            &[d("ns1.evil.ru")]
        );
        assert_eq!(
            a.delegation_on(&d("pch.net"), Day(14)).unwrap(),
            &[d("ns1.pch.net")]
        );
        assert!(a.delegation_on(&d("pch.net"), Day(99)).is_none());
    }

    #[test]
    fn identical_consecutive_days_merge_into_one_run() {
        let a = archive();
        // 0..=14, 15, 16..=29 → 3 runs.
        assert_eq!(a.snapshots[&d("pch.net")].len(), 3);
        assert_eq!(a.archived_days(&d("pch.net")).len(), 30);
    }

    #[test]
    fn record_span_bulk() {
        let mut a = ZoneSnapshotArchive::with_access(vec!["com".into()]);
        a.record_span(Day(0), Day(99), &d("example.com"), &[d("ns1.example.com")]);
        a.record_span(Day(100), Day(100), &d("example.com"), &[d("ns1.evil.ru")]);
        a.record_span(
            Day(101),
            Day(200),
            &d("example.com"),
            &[d("ns1.example.com")],
        );
        assert_eq!(
            a.delegation_on(&d("example.com"), Day(50)).unwrap(),
            &[d("ns1.example.com")]
        );
        assert_eq!(
            a.delegation_on(&d("example.com"), Day(100)).unwrap(),
            &[d("ns1.evil.ru")]
        );
        assert_eq!(
            a.days_with_nameserver(&d("example.com"), &d("ns1.evil.ru")),
            vec![Day(100)]
        );
        assert!(a.delegation_on(&d("example.com"), Day(201)).is_none());
    }

    #[test]
    #[should_panic(expected = "chronologically")]
    fn rejects_out_of_order_spans() {
        let mut a = ZoneSnapshotArchive::with_access(vec!["com".into()]);
        a.record_span(Day(10), Day(20), &d("example.com"), &[d("ns1.example.com")]);
        a.record_span(Day(5), Day(9), &d("example.com"), &[d("ns1.example.com")]);
    }
}
