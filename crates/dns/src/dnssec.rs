//! DNSSEC status tracking and its measurement archive.
//!
//! §3 of the paper: an attacker with registrar-level capability "can also
//! typically disable protections provided by DNSSEC" — signed delegations
//! would otherwise make the rogue nameservers' answers fail validation.
//! §7.1 proposes using exactly this side effect: *"changes in DNSSEC
//! status during the time-frame of a transient deployment"* as an
//! additional retroactive signal.
//!
//! [`DnssecArchive`] models what long-running active-measurement projects
//! (OpenINTEL-style) record: the daily signed/unsigned status of each
//! domain. The inspection stage can then ask for disable events
//! overlapping a suspicious window.

use retrodns_types::{Day, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One status run: the domain was (un)signed for every day in the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Run {
    from: Day,
    to: Day,
    signed: bool,
}

/// A DNSSEC disable event: signing dropped on `disabled`, restored on
/// `restored` (if ever, within the archive window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisableEvent {
    /// First unsigned day.
    pub disabled: Day,
    /// First re-signed day, if observed.
    pub restored: Option<Day>,
}

/// Daily archive of per-domain DNSSEC status.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnssecArchive {
    runs: HashMap<DomainName, Vec<Run>>,
}

impl DnssecArchive {
    /// An empty archive.
    pub fn new() -> DnssecArchive {
        DnssecArchive::default()
    }

    /// Record that `domain` was `signed` every day in `[from, to]`.
    /// Spans must be appended chronologically per domain.
    pub fn record_span(&mut self, from: Day, to: Day, domain: &DomainName, signed: bool) {
        assert!(from <= to, "inverted DNSSEC span");
        let runs = self.runs.entry(domain.clone()).or_default();
        if let Some(last) = runs.last_mut() {
            assert!(from > last.to, "DNSSEC spans must be chronological");
            if last.to + 1 == from && last.signed == signed {
                last.to = to;
                return;
            }
        }
        runs.push(Run { from, to, signed });
    }

    /// The archived status on `day` (`None` = not measured).
    pub fn status_on(&self, domain: &DomainName, day: Day) -> Option<bool> {
        let runs = self.runs.get(domain)?;
        let idx = match runs.binary_search_by_key(&day, |r| r.from) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let run = &runs[idx];
        (day <= run.to).then_some(run.signed)
    }

    /// Was the domain ever signed in the archive?
    pub fn ever_signed(&self, domain: &DomainName) -> bool {
        self.runs
            .get(domain)
            .map(|runs| runs.iter().any(|r| r.signed))
            .unwrap_or(false)
    }

    /// All signed→unsigned transitions, with the re-signing day if any.
    pub fn disable_events(&self, domain: &DomainName) -> Vec<DisableEvent> {
        let Some(runs) = self.runs.get(domain) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for w in runs.windows(2) {
            if w[0].signed && !w[1].signed {
                out.push(DisableEvent {
                    disabled: w[1].from,
                    restored: None,
                });
            } else if !w[0].signed && w[1].signed {
                if let Some(last) = out.last_mut() {
                    if last.restored.is_none() {
                        last.restored = Some(w[1].from);
                    }
                }
            }
        }
        out
    }

    /// Disable events whose unsigned window overlaps `[from, to]`.
    pub fn disable_events_in(&self, domain: &DomainName, from: Day, to: Day) -> Vec<DisableEvent> {
        self.disable_events(domain)
            .into_iter()
            .filter(|e| {
                let end = e.restored.map(|r| r - 1).unwrap_or(Day(u32::MAX));
                e.disabled <= to && end >= from
            })
            .collect()
    }

    /// Number of archived domains.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn archive() -> DnssecArchive {
        let mut a = DnssecArchive::new();
        // Signed from day 0, attacker disables days 100..=120, restored.
        a.record_span(Day(0), Day(99), &d("mfa.gov.kg"), true);
        a.record_span(Day(100), Day(120), &d("mfa.gov.kg"), false);
        a.record_span(Day(121), Day(400), &d("mfa.gov.kg"), true);
        // Never signed.
        a.record_span(Day(0), Day(400), &d("plain.com"), false);
        a
    }

    #[test]
    fn status_lookup() {
        let a = archive();
        assert_eq!(a.status_on(&d("mfa.gov.kg"), Day(50)), Some(true));
        assert_eq!(a.status_on(&d("mfa.gov.kg"), Day(110)), Some(false));
        assert_eq!(a.status_on(&d("mfa.gov.kg"), Day(121)), Some(true));
        assert_eq!(a.status_on(&d("mfa.gov.kg"), Day(401)), None);
        assert_eq!(a.status_on(&d("unknown.com"), Day(10)), None);
    }

    #[test]
    fn disable_events_detected() {
        let a = archive();
        let events = a.disable_events(&d("mfa.gov.kg"));
        assert_eq!(
            events,
            vec![DisableEvent {
                disabled: Day(100),
                restored: Some(Day(121)),
            }]
        );
        assert!(a.disable_events(&d("plain.com")).is_empty());
    }

    #[test]
    fn disable_events_window_filter() {
        let a = archive();
        assert_eq!(
            a.disable_events_in(&d("mfa.gov.kg"), Day(90), Day(105))
                .len(),
            1
        );
        assert_eq!(
            a.disable_events_in(&d("mfa.gov.kg"), Day(115), Day(130))
                .len(),
            1
        );
        assert!(a
            .disable_events_in(&d("mfa.gov.kg"), Day(0), Day(99))
            .is_empty());
        assert!(a
            .disable_events_in(&d("mfa.gov.kg"), Day(130), Day(200))
            .is_empty());
    }

    #[test]
    fn unrestored_disable() {
        let mut a = DnssecArchive::new();
        a.record_span(Day(0), Day(99), &d("x.com"), true);
        a.record_span(Day(100), Day(400), &d("x.com"), false);
        let events = a.disable_events(&d("x.com"));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].restored, None);
        assert_eq!(
            a.disable_events_in(&d("x.com"), Day(300), Day(350)).len(),
            1
        );
        assert!(a.ever_signed(&d("x.com")));
    }

    #[test]
    fn contiguous_same_status_merges() {
        let mut a = DnssecArchive::new();
        a.record_span(Day(0), Day(10), &d("x.com"), true);
        a.record_span(Day(11), Day(20), &d("x.com"), true);
        assert_eq!(a.runs[&d("x.com")].len(), 1);
    }
}
