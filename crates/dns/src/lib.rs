//! # retrodns-dns
//!
//! The DNS substrate: a *time-indexed* model of the delegation and record
//! state the paper's attacks manipulate, plus the two observation systems
//! the retroactive analyst gets to query — passive DNS and daily zone-file
//! snapshots.
//!
//! Everything is keyed by [`retrodns_types::Day`] because retroactive
//! analysis replays resolution *as of* arbitrary past days: the weekly
//! scanner resolves on scan days, the ACME CA resolves on issuance days,
//! pDNS sensors sample real query traffic day by day, and the zone archive
//! snapshots delegations once a day.
//!
//! Module map:
//!
//! * [`record`] — record types and data (A/NS/TXT).
//! * [`timeseries`] — the change-log container giving every piece of DNS
//!   state a value-as-of-day semantics.
//! * [`registrar`] — registrars, registrant accounts, and the authorization
//!   model whose compromise is the attack's "Develop Capability" stage.
//! * [`authority`] — the time-indexed authoritative DNS database
//!   ([`DnsDb`]): registry delegations plus per-nameserver zone content,
//!   with resolution (`resolve_a`, `resolve_txt`, `delegation_of`).
//! * [`pdns`] — the passive-DNS sensor network and its reverse indexes
//!   (by-IP and by-NS), which power the pivot stage.
//! * [`snapshot`] — the daily zone-file archive (CAIDA-DZDB analog) with
//!   partial TLD coverage.
//! * [`dnssec`] — per-domain DNSSEC status over time and its
//!   active-measurement archive (the §7.1 extension signal).

#![warn(missing_docs)]
pub mod authority;
pub mod dnssec;
pub mod pdns;
pub mod record;
pub mod registrar;
pub mod snapshot;
pub mod timeseries;

pub use authority::{DnsDb, ResolutionError};
pub use dnssec::{DisableEvent, DnssecArchive};
pub use pdns::{PassiveDns, PdnsEntry, RdataKey};
pub use record::{RecordData, RecordType};
pub use registrar::{Actor, AuthError, RegistrarId, RegistrarRegistry};
pub use snapshot::ZoneSnapshotArchive;
pub use timeseries::TimeSeries;
