//! The time-indexed authoritative DNS database.
//!
//! [`DnsDb`] holds the three layers of state a DNS infrastructure hijack
//! manipulates, each as a [`TimeSeries`] so resolution can be replayed as
//! of any past day:
//!
//! 1. **Registry delegations** — which nameserver hostnames a registered
//!    domain delegates to. Changing this requires authorization through
//!    the [`crate::registrar`] model (this is what the attacker rewrites).
//! 2. **Zone content per nameserver** — what each nameserver host answers
//!    for each name. The legitimate operator's nameservers answer the real
//!    records; the attacker's rogue nameservers answer whatever the
//!    attacker stages (the counterfeit A records, the ACME TXT tokens).
//! 3. **Glue** — nameserver hostname → IP address, letting the pivot stage
//!    tie rogue nameservers to attacker address space.
//!
//! Resolution (`resolve`) follows the delegation in effect on the queried
//! day, unions the answers of the delegated nameservers that carry zone
//! data for the name, and reports `NxDomain`/`NoData` faithfully. This
//! models the paper's central mechanism: when the delegation points at the
//! rogue nameservers, *every* consumer — users, the weekly scanner, the
//! ACME validation check — sees the attacker's answers.

use crate::record::{RecordData, RecordType};
use crate::registrar::{Actor, AuthError, RegistrarId, RegistrarRegistry};
use crate::timeseries::TimeSeries;
use retrodns_types::{Day, DomainName, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolutionError {
    /// The registered domain has no delegation on the queried day.
    NxDomain(DomainName),
    /// Delegation exists but no delegated nameserver answers for the name.
    NoData,
}

impl fmt::Display for ResolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolutionError::NxDomain(d) => write!(f, "NXDOMAIN: no delegation for {d}"),
            ResolutionError::NoData => write!(f, "NODATA: delegated servers have no answer"),
        }
    }
}

impl std::error::Error for ResolutionError {}

/// The authoritative DNS database (registry + nameservers + glue).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsDb {
    /// Registration/authorization layer.
    pub registrars: RegistrarRegistry,
    /// registered domain → delegated NS hostnames over time.
    delegations: HashMap<DomainName, TimeSeries<Vec<DomainName>>>,
    /// (nameserver host, owner name, rtype) → answer set over time.
    zone_data: HashMap<(DomainName, DomainName, RecordType), TimeSeries<Vec<RecordData>>>,
    /// (owner name, rtype) → days any nameserver's content changed
    /// (secondary index powering [`DnsDb::resolution_segments`]).
    zone_change_days: HashMap<(DomainName, RecordType), Vec<Day>>,
    /// nameserver host → addresses over time (glue).
    glue: HashMap<DomainName, TimeSeries<Vec<Ipv4Addr>>>,
    /// registered domain → DNSSEC signing status over time. Changing it
    /// requires the same registry capability as changing the delegation
    /// (DS records live at the registry).
    dnssec: HashMap<DomainName, TimeSeries<bool>>,
}

impl DnsDb {
    /// An empty database.
    pub fn new() -> DnsDb {
        DnsDb::default()
    }

    // ------------------------------------------------------------------
    // Registration & delegation (authorized writes)
    // ------------------------------------------------------------------

    /// Register a domain with a registrar (no delegation yet).
    pub fn register_domain(&mut self, domain: DomainName, registrar: RegistrarId, day: Day) {
        self.registrars.register_domain(domain, registrar, day);
    }

    /// Change a domain's delegation, subject to the actor's capability.
    ///
    /// This is the sole write path into the registry layer: legitimate
    /// owners and attackers alike go through it, so simulated attacks are
    /// possible exactly when the modelled capability exists.
    pub fn set_delegation(
        &mut self,
        actor: &Actor,
        domain: &DomainName,
        nameservers: Vec<DomainName>,
        day: Day,
    ) -> Result<(), AuthError> {
        self.registrars.authorize(actor, domain)?;
        self.delegations
            .entry(domain.clone())
            .or_default()
            .set(day, nameservers);
        Ok(())
    }

    /// Set a domain's DNSSEC signing status, subject to the actor's
    /// capability (attackers with registrar/registry access disable it
    /// before hijacking signed domains, §3).
    pub fn set_dnssec(
        &mut self,
        actor: &Actor,
        domain: &DomainName,
        signed: bool,
        day: Day,
    ) -> Result<(), AuthError> {
        self.registrars.authorize(actor, domain)?;
        self.dnssec
            .entry(domain.clone())
            .or_default()
            .set(day, signed);
        Ok(())
    }

    /// Is the domain DNSSEC-signed on `day`? (`false` when never set.)
    pub fn dnssec_enabled(&self, domain: &DomainName, day: Day) -> bool {
        self.dnssec
            .get(domain)
            .and_then(|ts| ts.value_at(day))
            .copied()
            .unwrap_or(false)
    }

    /// Piecewise DNSSEC status over `[from, to]`.
    pub fn dnssec_segments(
        &self,
        domain: &DomainName,
        from: Day,
        to: Day,
    ) -> Vec<(Day, Day, bool)> {
        assert!(from <= to, "inverted segment window");
        let mut breakpoints: Vec<Day> = vec![from];
        if let Some(ts) = self.dnssec.get(domain) {
            breakpoints.extend(
                ts.changes()
                    .map(|(d, _)| d)
                    .filter(|d| *d > from && *d <= to),
            );
        }
        breakpoints.sort();
        breakpoints.dedup();
        let mut out: Vec<(Day, Day, bool)> = Vec::new();
        for (i, &start) in breakpoints.iter().enumerate() {
            let end = breakpoints.get(i + 1).map(|next| *next - 1).unwrap_or(to);
            let signed = self.dnssec_enabled(domain, start);
            match out.last_mut() {
                Some(last) if last.2 == signed => last.1 = end,
                _ => out.push((start, end, signed)),
            }
        }
        out
    }

    /// The NS hostnames a domain delegates to on `day`.
    pub fn delegation_of(&self, domain: &DomainName, day: Day) -> Option<&[DomainName]> {
        self.delegations
            .get(domain)?
            .value_at(day)
            .map(Vec::as_slice)
    }

    /// Full delegation history of a domain (for snapshot/pDNS generation).
    pub fn delegation_series(&self, domain: &DomainName) -> Option<&TimeSeries<Vec<DomainName>>> {
        self.delegations.get(domain)
    }

    /// All domains that ever had a delegation.
    pub fn delegated_domains(&self) -> impl Iterator<Item = &DomainName> {
        self.delegations.keys()
    }

    // ------------------------------------------------------------------
    // Zone content & glue (nameserver-operator writes, no registry auth)
    // ------------------------------------------------------------------

    /// Set the answer a nameserver host serves for `(name, rtype)` from
    /// `day` onward. The operator of a nameserver controls its content —
    /// authorization happened (or was usurped) at the delegation layer.
    pub fn set_zone_record(
        &mut self,
        ns_host: &DomainName,
        name: &DomainName,
        data: Vec<RecordData>,
        day: Day,
    ) {
        debug_assert!(
            !data.is_empty(),
            "use remove_zone_record to delete an answer"
        );
        let rtype = data[0].rtype();
        debug_assert!(
            data.iter().all(|d| d.rtype() == rtype),
            "mixed record types in one answer set"
        );
        self.zone_data
            .entry((ns_host.clone(), name.clone(), rtype))
            .or_default()
            .set(day, data);
        self.note_zone_change(name, rtype, day);
    }

    /// Remove a nameserver's answer for `(name, rtype)` from `day` onward.
    pub fn remove_zone_record(
        &mut self,
        ns_host: &DomainName,
        name: &DomainName,
        rtype: RecordType,
        day: Day,
    ) {
        self.zone_data
            .entry((ns_host.clone(), name.clone(), rtype))
            .or_default()
            .set(day, Vec::new());
        self.note_zone_change(name, rtype, day);
    }

    fn note_zone_change(&mut self, name: &DomainName, rtype: RecordType, day: Day) {
        let days = self
            .zone_change_days
            .entry((name.clone(), rtype))
            .or_default();
        if !days.contains(&day) {
            days.push(day);
        }
    }

    /// Set the glue addresses for a nameserver host from `day` onward.
    pub fn set_glue(&mut self, ns_host: &DomainName, ips: Vec<Ipv4Addr>, day: Day) {
        self.glue.entry(ns_host.clone()).or_default().set(day, ips);
    }

    /// The glue addresses of a nameserver host on `day`.
    pub fn ns_addresses(&self, ns_host: &DomainName, day: Day) -> &[Ipv4Addr] {
        self.glue
            .get(ns_host)
            .and_then(|ts| ts.value_at(day))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    // ------------------------------------------------------------------
    // Resolution
    // ------------------------------------------------------------------

    /// Resolve `(name, rtype)` as of `day`: follow the delegation of the
    /// name's registered domain and union the delegated nameservers'
    /// answers (deduplicated, in first-seen order).
    pub fn resolve(
        &self,
        name: &DomainName,
        rtype: RecordType,
        day: Day,
    ) -> Result<Vec<RecordData>, ResolutionError> {
        let registered = name.registered_domain();
        let nameservers = self
            .delegation_of(&registered, day)
            .ok_or_else(|| ResolutionError::NxDomain(registered.clone()))?;
        let mut answers: Vec<RecordData> = Vec::new();
        let mut any_zone = false;
        for ns in nameservers {
            if let Some(ts) = self.zone_data.get(&(ns.clone(), name.clone(), rtype)) {
                if let Some(data) = ts.value_at(day) {
                    any_zone = true;
                    for d in data {
                        if !answers.contains(d) {
                            answers.push(d.clone());
                        }
                    }
                }
            }
        }
        if !any_zone || answers.is_empty() {
            return Err(ResolutionError::NoData);
        }
        Ok(answers)
    }

    /// Resolve A records to plain addresses.
    pub fn resolve_a(&self, name: &DomainName, day: Day) -> Result<Vec<Ipv4Addr>, ResolutionError> {
        Ok(self
            .resolve(name, RecordType::A, day)?
            .iter()
            .filter_map(RecordData::as_a)
            .collect())
    }

    /// Resolve TXT records to strings.
    pub fn resolve_txt(&self, name: &DomainName, day: Day) -> Result<Vec<String>, ResolutionError> {
        Ok(self
            .resolve(name, RecordType::Txt, day)?
            .iter()
            .filter_map(|d| d.as_txt().map(str::to_string))
            .collect())
    }

    /// The piecewise-constant resolution of `(name, rtype)` over
    /// `[from, to]`: maximal segments `(start, end_inclusive, answers)`
    /// where `answers` is empty for NXDOMAIN/NODATA stretches.
    ///
    /// Resolution can only change on days where either the registered
    /// domain's delegation changed or some nameserver's content for the
    /// name changed, so this costs O(changes), not O(days) — the
    /// observation generators (pDNS sampling, zone snapshots) rely on it
    /// to stay cheap over a four-year window.
    pub fn resolution_segments(
        &self,
        name: &DomainName,
        rtype: RecordType,
        from: Day,
        to: Day,
    ) -> Vec<(Day, Day, Vec<RecordData>)> {
        assert!(from <= to, "inverted segment window");
        let registered = name.registered_domain();
        let mut breakpoints: Vec<Day> = vec![from];
        if let Some(ts) = self.delegations.get(&registered) {
            breakpoints.extend(
                ts.changes()
                    .map(|(d, _)| d)
                    .filter(|d| *d > from && *d <= to),
            );
        }
        if let Some(days) = self.zone_change_days.get(&(name.clone(), rtype)) {
            breakpoints.extend(days.iter().copied().filter(|d| *d > from && *d <= to));
        }
        breakpoints.sort();
        breakpoints.dedup();
        let mut out: Vec<(Day, Day, Vec<RecordData>)> = Vec::new();
        for (i, &start) in breakpoints.iter().enumerate() {
            let end = breakpoints.get(i + 1).map(|next| *next - 1).unwrap_or(to);
            let answers = self.resolve(name, rtype, start).unwrap_or_default();
            match out.last_mut() {
                Some(last) if last.2 == answers => last.1 = end,
                _ => out.push((start, end, answers)),
            }
        }
        out
    }

    /// Like [`Self::resolution_segments`] but for the delegation (NS set)
    /// of a registered domain, empty vec meaning "no delegation".
    pub fn delegation_segments(
        &self,
        registered: &DomainName,
        from: Day,
        to: Day,
    ) -> Vec<(Day, Day, Vec<DomainName>)> {
        assert!(from <= to, "inverted segment window");
        let mut breakpoints: Vec<Day> = vec![from];
        if let Some(ts) = self.delegations.get(registered) {
            breakpoints.extend(
                ts.changes()
                    .map(|(d, _)| d)
                    .filter(|d| *d > from && *d <= to),
            );
        }
        breakpoints.sort();
        breakpoints.dedup();
        let mut out: Vec<(Day, Day, Vec<DomainName>)> = Vec::new();
        for (i, &start) in breakpoints.iter().enumerate() {
            let end = breakpoints.get(i + 1).map(|next| *next - 1).unwrap_or(to);
            let ns = self
                .delegation_of(registered, start)
                .map(<[DomainName]>::to_vec)
                .unwrap_or_default();
            match out.last_mut() {
                Some(last) if last.2 == ns => last.1 = end,
                _ => out.push((start, end, ns)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Build the mfa.gov.kg scenario: stable infocom delegation, hijacked
    /// to kg-infocom.ru for days 100..=120.
    fn hijack_world() -> DnsDb {
        let mut db = DnsDb::new();
        db.registrars.add_registrar(RegistrarId(1), "KG NIC");
        db.register_domain(d("mfa.gov.kg"), RegistrarId(1), Day(0));

        // Legitimate setup.
        db.set_delegation(
            &Actor::Owner,
            &d("mfa.gov.kg"),
            vec![d("ns1.infocom.kg"), d("ns2.infocom.kg")],
            Day(0),
        )
        .unwrap();
        for ns in ["ns1.infocom.kg", "ns2.infocom.kg"] {
            db.set_zone_record(
                &d(ns),
                &d("mail.mfa.gov.kg"),
                vec![RecordData::A(ip("10.0.0.5"))],
                Day(0),
            );
        }
        db.set_glue(&d("ns1.infocom.kg"), vec![ip("10.0.0.1")], Day(0));

        // Attacker stages rogue NS content *before* flipping delegation.
        db.set_zone_record(
            &d("ns1.kg-infocom.ru"),
            &d("mail.mfa.gov.kg"),
            vec![RecordData::A(ip("94.103.91.159"))],
            Day(99),
        );
        db.set_glue(&d("ns1.kg-infocom.ru"), vec![ip("94.103.91.1")], Day(99));

        // Hijack: delegation flipped day 100, restored day 121.
        let attacker = Actor::StolenCredentials(d("mfa.gov.kg"));
        db.set_delegation(
            &attacker,
            &d("mfa.gov.kg"),
            vec![d("ns1.kg-infocom.ru")],
            Day(100),
        )
        .unwrap();
        db.set_delegation(
            &Actor::Owner,
            &d("mfa.gov.kg"),
            vec![d("ns1.infocom.kg"), d("ns2.infocom.kg")],
            Day(121),
        )
        .unwrap();
        db
    }

    #[test]
    fn resolution_follows_delegation_over_time() {
        let db = hijack_world();
        let name = d("mail.mfa.gov.kg");
        assert_eq!(db.resolve_a(&name, Day(50)).unwrap(), vec![ip("10.0.0.5")]);
        assert_eq!(
            db.resolve_a(&name, Day(105)).unwrap(),
            vec![ip("94.103.91.159")],
            "during the hijack the rogue NS answers"
        );
        assert_eq!(db.resolve_a(&name, Day(121)).unwrap(), vec![ip("10.0.0.5")]);
    }

    #[test]
    fn unauthorized_delegation_change_is_rejected() {
        let mut db = hijack_world();
        let wrong = Actor::StolenCredentials(d("other.gov.kg"));
        let err = db
            .set_delegation(&wrong, &d("mfa.gov.kg"), vec![d("evil.ru")], Day(50))
            .unwrap_err();
        assert_eq!(err, AuthError::NotAuthorized);
        // State unchanged.
        assert_eq!(
            db.delegation_of(&d("mfa.gov.kg"), Day(50)).unwrap(),
            &[d("ns1.infocom.kg"), d("ns2.infocom.kg")]
        );
    }

    #[test]
    fn nxdomain_for_unregistered_name() {
        let db = hijack_world();
        assert_eq!(
            db.resolve_a(&d("mail.unknown.kg"), Day(50)).unwrap_err(),
            ResolutionError::NxDomain(d("unknown.kg"))
        );
    }

    #[test]
    fn nodata_when_nameserver_lacks_record() {
        let db = hijack_world();
        assert_eq!(
            db.resolve_a(&d("www.mfa.gov.kg"), Day(50)).unwrap_err(),
            ResolutionError::NoData
        );
        // TXT for a name that only has A data is NODATA too.
        assert_eq!(
            db.resolve_txt(&d("mail.mfa.gov.kg"), Day(50)).unwrap_err(),
            ResolutionError::NoData
        );
    }

    #[test]
    fn answers_union_and_dedup_across_nameservers() {
        let mut db = DnsDb::new();
        db.registrars.add_registrar(RegistrarId(1), "R");
        db.register_domain(d("example.com"), RegistrarId(1), Day(0));
        db.set_delegation(
            &Actor::Owner,
            &d("example.com"),
            vec![d("ns1.example.com"), d("ns2.example.com")],
            Day(0),
        )
        .unwrap();
        db.set_zone_record(
            &d("ns1.example.com"),
            &d("example.com"),
            vec![RecordData::A(ip("10.0.0.1")), RecordData::A(ip("10.0.0.2"))],
            Day(0),
        );
        db.set_zone_record(
            &d("ns2.example.com"),
            &d("example.com"),
            vec![RecordData::A(ip("10.0.0.2")), RecordData::A(ip("10.0.0.3"))],
            Day(0),
        );
        let ips = db.resolve_a(&d("example.com"), Day(5)).unwrap();
        assert_eq!(ips, vec![ip("10.0.0.1"), ip("10.0.0.2"), ip("10.0.0.3")]);
    }

    #[test]
    fn record_removal_yields_nodata() {
        let mut db = hijack_world();
        db.remove_zone_record(
            &d("ns1.infocom.kg"),
            &d("mail.mfa.gov.kg"),
            RecordType::A,
            Day(60),
        );
        db.remove_zone_record(
            &d("ns2.infocom.kg"),
            &d("mail.mfa.gov.kg"),
            RecordType::A,
            Day(60),
        );
        assert!(db.resolve_a(&d("mail.mfa.gov.kg"), Day(61)).is_err());
        // History before removal is intact.
        assert!(db.resolve_a(&d("mail.mfa.gov.kg"), Day(59)).is_ok());
    }

    #[test]
    fn glue_lookup_over_time() {
        let db = hijack_world();
        assert_eq!(
            db.ns_addresses(&d("ns1.kg-infocom.ru"), Day(100)),
            &[ip("94.103.91.1")]
        );
        assert!(db.ns_addresses(&d("ns1.kg-infocom.ru"), Day(50)).is_empty());
        assert!(db.ns_addresses(&d("nsX.nowhere.com"), Day(50)).is_empty());
    }

    #[test]
    fn resolution_segments_cover_hijack_exactly() {
        let db = hijack_world();
        let segs = db.resolution_segments(&d("mail.mfa.gov.kg"), RecordType::A, Day(0), Day(200));
        assert_eq!(
            segs,
            vec![
                (Day(0), Day(99), vec![RecordData::A(ip("10.0.0.5"))]),
                (Day(100), Day(120), vec![RecordData::A(ip("94.103.91.159"))]),
                (Day(121), Day(200), vec![RecordData::A(ip("10.0.0.5"))]),
            ]
        );
    }

    #[test]
    fn resolution_segments_before_any_data_are_empty() {
        let db = hijack_world();
        let segs = db.resolution_segments(&d("www.mfa.gov.kg"), RecordType::A, Day(0), Day(10));
        assert_eq!(segs, vec![(Day(0), Day(10), vec![])]);
    }

    #[test]
    fn delegation_segments_show_flip_and_restore() {
        let db = hijack_world();
        let segs = db.delegation_segments(&d("mfa.gov.kg"), Day(0), Day(200));
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[1], (Day(100), Day(120), vec![d("ns1.kg-infocom.ru")]));
        // Unknown domain: one empty segment.
        let none = db.delegation_segments(&d("unknown.kg"), Day(0), Day(10));
        assert_eq!(none, vec![(Day(0), Day(10), vec![])]);
    }

    #[test]
    fn segments_merge_no_op_changes() {
        let mut db = hijack_world();
        // Re-setting the same record value creates a change day but not a
        // distinct segment.
        db.set_zone_record(
            &d("ns1.infocom.kg"),
            &d("mail.mfa.gov.kg"),
            vec![RecordData::A(ip("10.0.0.5"))],
            Day(50),
        );
        let segs = db.resolution_segments(&d("mail.mfa.gov.kg"), RecordType::A, Day(0), Day(99));
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn dnssec_status_is_authorized_and_time_indexed() {
        let mut db = hijack_world();
        db.set_dnssec(&Actor::Owner, &d("mfa.gov.kg"), true, Day(0))
            .unwrap();
        assert!(db.dnssec_enabled(&d("mfa.gov.kg"), Day(50)));
        // The attacker disables it before the hijack.
        let actor = Actor::StolenCredentials(d("mfa.gov.kg"));
        db.set_dnssec(&actor, &d("mfa.gov.kg"), false, Day(99))
            .unwrap();
        db.set_dnssec(&Actor::Owner, &d("mfa.gov.kg"), true, Day(130))
            .unwrap();
        assert!(!db.dnssec_enabled(&d("mfa.gov.kg"), Day(100)));
        assert!(db.dnssec_enabled(&d("mfa.gov.kg"), Day(130)));
        // Unauthorized actors cannot touch it.
        let wrong = Actor::StolenCredentials(d("other.gov.kg"));
        assert!(db
            .set_dnssec(&wrong, &d("mfa.gov.kg"), false, Day(140))
            .is_err());
        // Segments reflect the excursion.
        let segs = db.dnssec_segments(&d("mfa.gov.kg"), Day(0), Day(200));
        assert_eq!(
            segs,
            vec![
                (Day(0), Day(98), true),
                (Day(99), Day(129), false),
                (Day(130), Day(200), true),
            ]
        );
        // Unknown domains are simply unsigned.
        assert!(!db.dnssec_enabled(&d("unknown.kg"), Day(5)));
    }

    #[test]
    fn txt_resolution_for_acme_challenges() {
        let mut db = hijack_world();
        // Attacker places the ACME token on their rogue NS; during the
        // hijack window the CA sees it.
        db.set_zone_record(
            &d("ns1.kg-infocom.ru"),
            &d("_acme-challenge.mail.mfa.gov.kg"),
            vec![RecordData::Txt("acme-token".into())],
            Day(100),
        );
        assert_eq!(
            db.resolve_txt(&d("_acme-challenge.mail.mfa.gov.kg"), Day(101))
                .unwrap(),
            vec!["acme-token".to_string()]
        );
        // Before and after the hijack the legitimate NS have no such record.
        assert!(db
            .resolve_txt(&d("_acme-challenge.mail.mfa.gov.kg"), Day(99))
            .is_err());
        assert!(db
            .resolve_txt(&d("_acme-challenge.mail.mfa.gov.kg"), Day(121))
            .is_err());
    }
}
