//! A change-log container with value-as-of-day semantics.
//!
//! All authoritative DNS state in the simulator is a [`TimeSeries`]: a
//! sorted list of `(effective_day, value)` change points. `value_at(day)`
//! returns the last change at or before `day` — exactly the semantics a
//! resolver sees when replaying history.

use retrodns_types::Day;
use serde::{Deserialize, Serialize};

/// A piecewise-constant value over time, represented by its change points.
///
/// # Examples
///
/// ```
/// use retrodns_dns::TimeSeries;
/// use retrodns_types::Day;
///
/// let mut ns = TimeSeries::new();
/// ns.set(Day(0), "ns1.infocom.kg");
/// ns.set(Day(100), "ns1.kg-infocom.ru"); // the hijack
/// ns.set(Day(103), "ns1.infocom.kg");    // restored
/// assert_eq!(ns.value_at(Day(50)), Some(&"ns1.infocom.kg"));
/// assert_eq!(ns.value_at(Day(101)), Some(&"ns1.kg-infocom.ru"));
/// assert_eq!(ns.value_at(Day(200)), Some(&"ns1.infocom.kg"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries<T> {
    /// Change points sorted by day, at most one per day (later `set` on the
    /// same day overwrites).
    changes: Vec<(Day, T)>,
}

impl<T> Default for TimeSeries<T> {
    fn default() -> Self {
        TimeSeries {
            changes: Vec::new(),
        }
    }
}

impl<T> TimeSeries<T> {
    /// An empty series (no value at any time).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the value becomes `value` on `day` (and stays until the
    /// next change point). Setting the same day twice overwrites.
    pub fn set(&mut self, day: Day, value: T) {
        match self.changes.binary_search_by_key(&day, |(d, _)| *d) {
            Ok(i) => self.changes[i] = (day, value),
            Err(i) => self.changes.insert(i, (day, value)),
        }
    }

    /// The value in effect on `day`: the last change at or before it.
    pub fn value_at(&self, day: Day) -> Option<&T> {
        match self.changes.binary_search_by_key(&day, |(d, _)| *d) {
            Ok(i) => Some(&self.changes[i].1),
            Err(0) => None,
            Err(i) => Some(&self.changes[i - 1].1),
        }
    }

    /// The day the currently effective value (as of `day`) was set.
    pub fn effective_since(&self, day: Day) -> Option<Day> {
        match self.changes.binary_search_by_key(&day, |(d, _)| *d) {
            Ok(i) => Some(self.changes[i].0),
            Err(0) => None,
            Err(i) => Some(self.changes[i - 1].0),
        }
    }

    /// All change points, in order.
    pub fn changes(&self) -> impl Iterator<Item = (Day, &T)> {
        self.changes.iter().map(|(d, v)| (*d, v))
    }

    /// Change points within `[from, to]` (inclusive).
    pub fn changes_in(&self, from: Day, to: Day) -> impl Iterator<Item = (Day, &T)> {
        self.changes
            .iter()
            .filter(move |(d, _)| *d >= from && *d <= to)
            .map(|(d, v)| (*d, v))
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no value was ever set.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The first change point, if any.
    pub fn first_change(&self) -> Option<(Day, &T)> {
        self.changes.first().map(|(d, v)| (*d, v))
    }

    /// The last change point, if any.
    pub fn last_change(&self) -> Option<(Day, &T)> {
        self.changes.last().map(|(d, v)| (*d, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_has_no_value() {
        let ts: TimeSeries<u32> = TimeSeries::new();
        assert_eq!(ts.value_at(Day(5)), None);
        assert!(ts.is_empty());
        assert_eq!(ts.first_change(), None);
    }

    #[test]
    fn value_before_first_change_is_none() {
        let mut ts = TimeSeries::new();
        ts.set(Day(10), 'a');
        assert_eq!(ts.value_at(Day(9)), None);
        assert_eq!(ts.value_at(Day(10)), Some(&'a'));
        assert_eq!(ts.value_at(Day(1000)), Some(&'a'));
    }

    #[test]
    fn out_of_order_sets_are_sorted() {
        let mut ts = TimeSeries::new();
        ts.set(Day(20), 'b');
        ts.set(Day(10), 'a');
        ts.set(Day(30), 'c');
        assert_eq!(ts.value_at(Day(15)), Some(&'a'));
        assert_eq!(ts.value_at(Day(20)), Some(&'b'));
        assert_eq!(ts.value_at(Day(25)), Some(&'b'));
        assert_eq!(ts.value_at(Day(30)), Some(&'c'));
        let days: Vec<Day> = ts.changes().map(|(d, _)| d).collect();
        assert_eq!(days, vec![Day(10), Day(20), Day(30)]);
    }

    #[test]
    fn same_day_set_overwrites() {
        let mut ts = TimeSeries::new();
        ts.set(Day(10), 'a');
        ts.set(Day(10), 'b');
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(Day(10)), Some(&'b'));
    }

    #[test]
    fn effective_since_reports_change_day() {
        let mut ts = TimeSeries::new();
        ts.set(Day(10), 'a');
        ts.set(Day(20), 'b');
        assert_eq!(ts.effective_since(Day(15)), Some(Day(10)));
        assert_eq!(ts.effective_since(Day(20)), Some(Day(20)));
        assert_eq!(ts.effective_since(Day(5)), None);
    }

    #[test]
    fn changes_in_window() {
        let mut ts = TimeSeries::new();
        for d in [10, 20, 30, 40] {
            ts.set(Day(d), d);
        }
        let inside: Vec<u32> = ts.changes_in(Day(15), Day(35)).map(|(_, v)| *v).collect();
        assert_eq!(inside, vec![20, 30]);
        let all: Vec<u32> = ts.changes_in(Day(10), Day(40)).map(|(_, v)| *v).collect();
        assert_eq!(all, vec![10, 20, 30, 40]);
    }

    #[test]
    fn hijack_and_restore_pattern() {
        // The mfa.gov.kg shape: stable, brief change, restore.
        let mut ns = TimeSeries::new();
        ns.set(Day(0), "legit");
        ns.set(Day(1449), "attacker"); // 2020-12-20
        ns.set(Day(1472), "legit"); // 2021-01-12
        assert_eq!(ns.value_at(Day(1448)), Some(&"legit"));
        assert_eq!(ns.value_at(Day(1449)), Some(&"attacker"));
        assert_eq!(ns.value_at(Day(1471)), Some(&"attacker"));
        assert_eq!(ns.value_at(Day(1472)), Some(&"legit"));
    }
}
