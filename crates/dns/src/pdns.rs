//! The passive-DNS sensor network (DomainTools/Farsight analog).
//!
//! Passive DNS aggregates resolutions observed on real networks into
//! `(name, rtype, rdata) → (first_seen, last_seen, count)` tuples. The
//! paper uses it three ways (§4.4–4.5):
//!
//! 1. *corroboration* — did the targeted subdomain briefly resolve to the
//!    transient deployment's IP, or the domain's delegation briefly move?
//! 2. *pivot by IP* — which other domains resolved to a known-attacker IP?
//! 3. *pivot by NS* — which other domains were delegated to known-attacker
//!    nameservers?
//!
//! Coverage is inherently partial: sensors only see networks where the
//! traffic is collected, and only names that are actually queried. The
//! sampling itself lives in `retrodns-sim` (it owns the RNG and the query
//! workload); this module faithfully aggregates whatever the sensors saw
//! and answers the three query shapes above.

use crate::record::{RecordData, RecordType};
use retrodns_types::{Day, DomainName, Ipv4Addr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Canonical rdata form used as part of the aggregation key.
pub type RdataKey = RecordData;

/// One aggregated passive-DNS tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdnsEntry {
    /// Queried name.
    pub name: DomainName,
    /// Record type.
    pub rtype: RecordType,
    /// Observed answer.
    pub rdata: RecordData,
    /// First day a sensor saw this resolution.
    pub first_seen: Day,
    /// Last day a sensor saw this resolution.
    pub last_seen: Day,
    /// Number of sensor observations aggregated.
    pub count: u64,
}

impl PdnsEntry {
    /// Number of days between first and last sighting, inclusive.
    pub fn visibility_days(&self) -> u32 {
        self.last_seen - self.first_seen + 1
    }

    /// Does the sighting window intersect `[from, to]`?
    pub fn overlaps(&self, from: Day, to: Day) -> bool {
        self.first_seen <= to && self.last_seen >= from
    }
}

/// Flat serialized form of [`PassiveDns`] (tuple-keyed maps do not fit
/// text formats like JSON; the indexes are rebuilt on deserialization).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PassiveDnsFlat {
    entries: Vec<(DomainName, RecordData, Day, Day, u64)>,
}

impl From<PassiveDns> for PassiveDnsFlat {
    fn from(p: PassiveDns) -> PassiveDnsFlat {
        let mut entries: Vec<(DomainName, RecordData, Day, Day, u64)> = p
            .tuples
            .into_iter()
            .map(|((name, _rtype, rdata), (first, last, count))| (name, rdata, first, last, count))
            .collect();
        entries.sort_by(|a, b| (&a.0, a.1.to_string()).cmp(&(&b.0, b.1.to_string())));
        PassiveDnsFlat { entries }
    }
}

impl From<PassiveDnsFlat> for PassiveDns {
    fn from(flat: PassiveDnsFlat) -> PassiveDns {
        let mut p = PassiveDns::new();
        for (name, rdata, first, last, count) in flat.entries {
            p.insert_aggregate(&name, rdata, first, last, count);
        }
        p
    }
}

/// The aggregated passive-DNS database with reverse indexes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "PassiveDnsFlat", into = "PassiveDnsFlat")]
pub struct PassiveDns {
    /// (name, rtype, rdata) → (first, last, count).
    tuples: HashMap<(DomainName, RecordType, RecordData), (Day, Day, u64)>,
    /// registered domain → keys of tuples whose name is under it.
    by_registered: HashMap<DomainName, Vec<(DomainName, RecordType, RecordData)>>,
    /// answer IP → tuple keys (A records only).
    by_ip: HashMap<Ipv4Addr, Vec<(DomainName, RecordType, RecordData)>>,
    /// NS hostname → tuple keys (NS records only).
    by_ns: HashMap<DomainName, Vec<(DomainName, RecordType, RecordData)>>,
}

impl PassiveDns {
    /// An empty database.
    pub fn new() -> PassiveDns {
        PassiveDns::default()
    }

    /// Record one sensor observation of `name` resolving to `rdata` on
    /// `day`.
    pub fn observe(&mut self, name: &DomainName, rdata: RecordData, day: Day) {
        let rtype = rdata.rtype();
        let key = (name.clone(), rtype, rdata);
        match self.tuples.get_mut(&key) {
            Some((first, last, count)) => {
                *first = (*first).min(day);
                *last = (*last).max(day);
                *count += 1;
            }
            None => {
                self.tuples.insert(key.clone(), (day, day, 1));
                self.by_registered
                    .entry(name.registered_domain())
                    .or_default()
                    .push(key.clone());
                match &key.2 {
                    RecordData::A(ip) => self.by_ip.entry(*ip).or_default().push(key.clone()),
                    RecordData::Ns(ns) => {
                        self.by_ns.entry(ns.clone()).or_default().push(key.clone())
                    }
                    RecordData::Txt(_) => {}
                }
            }
        }
    }

    /// Record an already-aggregated sighting: the tuple was seen `count`
    /// times between `first` and `last` inclusive. Used by observation
    /// generators that sample piecewise-constant resolution segments
    /// instead of replaying every day. Merges with existing aggregates.
    pub fn insert_aggregate(
        &mut self,
        name: &DomainName,
        rdata: RecordData,
        first: Day,
        last: Day,
        count: u64,
    ) {
        assert!(first <= last, "inverted aggregate window");
        assert!(count >= 1, "aggregate must represent at least one sighting");
        let rtype = rdata.rtype();
        let key = (name.clone(), rtype, rdata);
        match self.tuples.get_mut(&key) {
            Some((f, l, c)) => {
                *f = (*f).min(first);
                *l = (*l).max(last);
                *c += count;
            }
            None => {
                self.tuples.insert(key.clone(), (first, last, count));
                self.by_registered
                    .entry(name.registered_domain())
                    .or_default()
                    .push(key.clone());
                match &key.2 {
                    RecordData::A(ip) => self.by_ip.entry(*ip).or_default().push(key.clone()),
                    RecordData::Ns(ns) => {
                        self.by_ns.entry(ns.clone()).or_default().push(key.clone())
                    }
                    RecordData::Txt(_) => {}
                }
            }
        }
    }

    fn entry_of(&self, key: &(DomainName, RecordType, RecordData)) -> PdnsEntry {
        let (first, last, count) = self.tuples[key];
        PdnsEntry {
            name: key.0.clone(),
            rtype: key.1,
            rdata: key.2.clone(),
            first_seen: first,
            last_seen: last,
            count,
        }
    }

    /// All tuples for exactly `name` (optionally filtered by type),
    /// ordered by first-seen day.
    pub fn lookups(&self, name: &DomainName, rtype: Option<RecordType>) -> Vec<PdnsEntry> {
        let mut out: Vec<PdnsEntry> = self
            .tuples
            .keys()
            .filter(|(n, t, _)| n == name && rtype.map(|r| r == *t).unwrap_or(true))
            .map(|k| self.entry_of(k))
            .collect();
        out.sort_by_key(|e| (e.first_seen, e.rdata.to_string()));
        out
    }

    /// All tuples whose name is at or under `registered`, ordered by
    /// first-seen day (the "everything pDNS knows about this domain"
    /// query the inspection stage starts from).
    pub fn entries_under(&self, registered: &DomainName) -> Vec<PdnsEntry> {
        let mut out: Vec<PdnsEntry> = self
            .by_registered
            .get(registered)
            .map(|keys| keys.iter().map(|k| self.entry_of(k)).collect())
            .unwrap_or_default();
        out.sort_by_key(|e| (e.first_seen, e.name.clone(), e.rdata.to_string()));
        out
    }

    /// NS-delegation history pDNS observed for a registered domain.
    pub fn ns_history(&self, registered: &DomainName) -> Vec<PdnsEntry> {
        self.entries_under(registered)
            .into_iter()
            .filter(|e| e.rtype == RecordType::Ns && e.name == *registered)
            .collect()
    }

    /// Pivot by IP: every name observed resolving to `ip`, with windows.
    pub fn domains_resolving_to(&self, ip: Ipv4Addr) -> Vec<PdnsEntry> {
        let mut out: Vec<PdnsEntry> = self
            .by_ip
            .get(&ip)
            .map(|keys| keys.iter().map(|k| self.entry_of(k)).collect())
            .unwrap_or_default();
        out.sort_by_key(|e| (e.first_seen, e.name.clone()));
        out
    }

    /// Pivot by NS: every domain observed delegated to `ns_host`.
    pub fn domains_delegated_to(&self, ns_host: &DomainName) -> Vec<PdnsEntry> {
        let mut out: Vec<PdnsEntry> = self
            .by_ns
            .get(ns_host)
            .map(|keys| keys.iter().map(|k| self.entry_of(k)).collect())
            .unwrap_or_default();
        out.sort_by_key(|e| (e.first_seen, e.name.clone()));
        out
    }

    /// Iterate over every aggregated tuple (arbitrary order).
    pub fn iter_entries(&self) -> impl Iterator<Item = PdnsEntry> + '_ {
        self.tuples.keys().map(|k| self.entry_of(k))
    }

    /// Number of aggregated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn seeded() -> PassiveDns {
        let mut p = PassiveDns::new();
        // Stable resolution seen across a long window.
        for day in [10, 20, 30, 100, 200] {
            p.observe(
                &d("mail.mfa.gov.kg"),
                RecordData::A(ip("10.0.0.5")),
                Day(day),
            );
        }
        // Hijack: brief resolution to attacker IP.
        p.observe(
            &d("mail.mfa.gov.kg"),
            RecordData::A(ip("94.103.91.159")),
            Day(105),
        );
        // Delegation history.
        p.observe(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(10),
        );
        p.observe(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.infocom.kg")),
            Day(200),
        );
        p.observe(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(104),
        );
        p.observe(
            &d("mfa.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(106),
        );
        // Second victim delegated to the same rogue NS.
        p.observe(
            &d("fiu.gov.kg"),
            RecordData::Ns(d("ns1.kg-infocom.ru")),
            Day(110),
        );
        p.observe(
            &d("mail.fiu.gov.kg"),
            RecordData::A(ip("178.20.41.140")),
            Day(110),
        );
        p
    }

    #[test]
    fn aggregation_tracks_first_last_count() {
        let p = seeded();
        let hits = p.lookups(&d("mail.mfa.gov.kg"), Some(RecordType::A));
        assert_eq!(hits.len(), 2);
        let stable = hits
            .iter()
            .find(|e| e.rdata.as_a() == Some(ip("10.0.0.5")))
            .unwrap();
        assert_eq!(stable.first_seen, Day(10));
        assert_eq!(stable.last_seen, Day(200));
        assert_eq!(stable.count, 5);
        let hijack = hits
            .iter()
            .find(|e| e.rdata.as_a() == Some(ip("94.103.91.159")))
            .unwrap();
        assert_eq!(hijack.visibility_days(), 1, "hijack visible a single day");
    }

    #[test]
    fn ns_history_shows_brief_delegation_change() {
        let p = seeded();
        let ns = p.ns_history(&d("mfa.gov.kg"));
        assert_eq!(ns.len(), 2);
        let rogue = ns
            .iter()
            .find(|e| e.rdata.as_ns() == Some(&d("ns1.kg-infocom.ru")))
            .unwrap();
        assert_eq!(rogue.first_seen, Day(104));
        assert_eq!(rogue.last_seen, Day(106));
        assert!(rogue.overlaps(Day(100), Day(110)));
        assert!(!rogue.overlaps(Day(0), Day(50)));
    }

    #[test]
    fn pivot_by_ip_finds_all_names() {
        let p = seeded();
        let hits = p.domains_resolving_to(ip("94.103.91.159"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, d("mail.mfa.gov.kg"));
        assert!(p.domains_resolving_to(ip("1.1.1.1")).is_empty());
    }

    #[test]
    fn pivot_by_ns_finds_other_victims() {
        let p = seeded();
        let hits = p.domains_delegated_to(&d("ns1.kg-infocom.ru"));
        let names: Vec<&DomainName> = hits.iter().map(|e| &e.name).collect();
        assert_eq!(names, vec![&d("mfa.gov.kg"), &d("fiu.gov.kg")]);
    }

    #[test]
    fn entries_under_covers_subdomains() {
        let p = seeded();
        let all = p.entries_under(&d("mfa.gov.kg"));
        assert_eq!(all.len(), 4); // 2 A variants + 2 NS variants
        assert!(p.entries_under(&d("nothing.kg")).is_empty());
    }

    #[test]
    fn insert_aggregate_merges_with_observations() {
        let mut p = PassiveDns::new();
        p.observe(&d("mail.x.com"), RecordData::A(ip("10.0.0.1")), Day(50));
        p.insert_aggregate(
            &d("mail.x.com"),
            RecordData::A(ip("10.0.0.1")),
            Day(10),
            Day(40),
            7,
        );
        let e = &p.lookups(&d("mail.x.com"), None)[0];
        assert_eq!(e.first_seen, Day(10));
        assert_eq!(e.last_seen, Day(50));
        assert_eq!(e.count, 8);
        // Reverse index reachable for aggregate-only tuples.
        p.insert_aggregate(
            &d("mail.y.com"),
            RecordData::A(ip("10.0.0.2")),
            Day(5),
            Day(6),
            2,
        );
        assert_eq!(p.domains_resolving_to(ip("10.0.0.2")).len(), 1);
    }

    #[test]
    fn lookups_type_filter() {
        let p = seeded();
        assert_eq!(p.lookups(&d("mfa.gov.kg"), Some(RecordType::A)).len(), 0);
        assert_eq!(p.lookups(&d("mfa.gov.kg"), Some(RecordType::Ns)).len(), 2);
        assert_eq!(p.lookups(&d("mfa.gov.kg"), None).len(), 2);
    }
}
