//! Property tests for the DNS substrate: time-series semantics and
//! passive-DNS aggregation invariants.

use proptest::prelude::*;
use retrodns_dns::{PassiveDns, RecordData, TimeSeries};
use retrodns_types::{Day, DomainName, Ipv4Addr};

proptest! {
    /// value_at equals a brute-force scan of the change log.
    #[test]
    fn timeseries_matches_linear_oracle(
        sets in prop::collection::vec((0u32..500, 0u32..100), 0..40),
        probes in prop::collection::vec(0u32..600, 1..20),
    ) {
        let mut ts = TimeSeries::new();
        let mut log: Vec<(u32, u32)> = Vec::new();
        for (day, v) in &sets {
            ts.set(Day(*day), *v);
            log.retain(|(d, _)| d != day);
            log.push((*day, *v));
        }
        log.sort_by_key(|(d, _)| *d);
        for probe in probes {
            let expected = log.iter().rev().find(|(d, _)| *d <= probe).map(|(_, v)| v);
            prop_assert_eq!(ts.value_at(Day(probe)), expected);
        }
    }

    /// Change points come out sorted and unique regardless of insert order.
    #[test]
    fn timeseries_changes_sorted_unique(
        sets in prop::collection::vec((0u32..500, 0u32..100), 0..40),
    ) {
        let mut ts = TimeSeries::new();
        for (day, v) in &sets {
            ts.set(Day(*day), *v);
        }
        let days: Vec<Day> = ts.changes().map(|(d, _)| d).collect();
        let mut sorted = days.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(days, sorted);
    }

    /// pDNS aggregation: first_seen = min day, last_seen = max day,
    /// count = number of observations, per tuple.
    #[test]
    fn pdns_first_last_count(
        observations in prop::collection::vec((0u8..4, 0u8..4, 0u32..1000), 1..60),
    ) {
        let names: Vec<DomainName> = (0..4)
            .map(|i| format!("host{i}.example.com").parse().unwrap())
            .collect();
        let ips: Vec<Ipv4Addr> = (0..4).map(|i| Ipv4Addr(0x0a00_0000 + i)).collect();

        let mut pdns = PassiveDns::new();
        let mut truth: std::collections::HashMap<(usize, usize), (u32, u32, u64)> =
            std::collections::HashMap::new();
        for (n, i, day) in &observations {
            let (n, i) = (*n as usize, *i as usize);
            pdns.observe(&names[n], RecordData::A(ips[i]), Day(*day));
            let e = truth.entry((n, i)).or_insert((*day, *day, 0));
            e.0 = e.0.min(*day);
            e.1 = e.1.max(*day);
            e.2 += 1;
        }
        for ((n, i), (first, last, count)) in truth {
            let hits = pdns.lookups(&names[n], None);
            let entry = hits
                .iter()
                .find(|e| e.rdata.as_a() == Some(ips[i]))
                .expect("observed tuple must be queryable");
            prop_assert_eq!(entry.first_seen, Day(first));
            prop_assert_eq!(entry.last_seen, Day(last));
            prop_assert_eq!(entry.count, count);
            prop_assert!(entry.first_seen <= entry.last_seen);
        }
    }

    /// The by-IP reverse index agrees with the forward tuples.
    #[test]
    fn pdns_reverse_index_consistent(
        observations in prop::collection::vec((0u8..4, 0u8..4, 0u32..1000), 1..60),
    ) {
        let names: Vec<DomainName> = (0..4)
            .map(|i| format!("host{i}.example.com").parse().unwrap())
            .collect();
        let ips: Vec<Ipv4Addr> = (0..4).map(|i| Ipv4Addr(0x0a00_0000 + i)).collect();
        let mut pdns = PassiveDns::new();
        for (n, i, day) in &observations {
            pdns.observe(&names[*n as usize], RecordData::A(ips[*i as usize]), Day(*day));
        }
        for ip in &ips {
            let via_reverse = pdns.domains_resolving_to(*ip);
            for entry in &via_reverse {
                // Every reverse hit must be reachable via the forward query.
                let forward = pdns.lookups(&entry.name, None);
                prop_assert!(forward.iter().any(|e| e == entry));
            }
        }
    }
}
