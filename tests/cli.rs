//! End-to-end test of the `retrodns` CLI: simulate → info → analyze
//! --score over a temp directory.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_retrodns"))
}

#[test]
fn simulate_analyze_roundtrip() {
    let dir = std::env::temp_dir().join(format!("retrodns-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // simulate
    let out = bin()
        .args(["simulate", "--out"])
        .arg(&dir)
        .args(["--seed", "9", "--domains", "1500"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "scans.json",
        "certs.json",
        "asdb.json",
        "pdns.json",
        "crtsh.json",
        "truth.json",
    ] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // info
    let out = bin()
        .args(["info", "--data"])
        .arg(&dir)
        .output()
        .expect("run info");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scans.json"), "{stdout}");

    // analyze --score
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&dir)
        .arg("--score")
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("funnel:"), "{stdout}");
    assert!(stdout.contains("scoring vs ground truth"), "{stdout}");
    assert!(stdout.contains("hijacked: precision"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_missing_dir_fails_cleanly() {
    let out = bin()
        .args(["analyze", "--data", "/nonexistent/retrodns-data"])
        .output()
        .expect("run analyze");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}
