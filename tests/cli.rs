//! End-to-end test of the `retrodns` CLI: simulate → info → analyze
//! --score over a temp directory, plus the checkpoint/resume flags and
//! the `experiments` harness's machine-readable outputs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_retrodns"))
}

/// The `experiments` binary (package `retrodns-bench`) lands in the same
/// target directory as `retrodns`; `CARGO_BIN_EXE_*` only covers bins of
/// the package under test, so locate it relative to ours. Workspace-wide
/// `cargo test` builds every member's bins before running any test.
fn experiments_exe() -> PathBuf {
    Path::new(env!("CARGO_BIN_EXE_retrodns"))
        .parent()
        .expect("bin dir")
        .join(format!("experiments{}", std::env::consts::EXE_SUFFIX))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("retrodns-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn simulate_analyze_roundtrip() {
    let dir = std::env::temp_dir().join(format!("retrodns-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // simulate
    let out = bin()
        .args(["simulate", "--out"])
        .arg(&dir)
        .args(["--seed", "9", "--domains", "1500"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "scans.json",
        "certs.json",
        "asdb.json",
        "pdns.json",
        "crtsh.json",
        "truth.json",
    ] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // info
    let out = bin()
        .args(["info", "--data"])
        .arg(&dir)
        .output()
        .expect("run info");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scans.json"), "{stdout}");

    // analyze --score
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&dir)
        .arg("--score")
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("funnel:"), "{stdout}");
    assert!(stdout.contains("scoring vs ground truth"), "{stdout}");
    assert!(stdout.contains("hijacked: precision"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_checkpoint_resume_is_byte_identical() {
    let base = temp_dir("ckpt");
    let data = base.join("data");
    let ckpt = base.join("checkpoints");

    let out = bin()
        .args(["simulate", "--out"])
        .arg(&data)
        .args(["--seed", "7", "--domains", "1500"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Full checkpointed run: every stage computed, snapshots + report
    // archived in the checkpoint directory.
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for stage in ["maps", "classify", "shortlist", "inspect"] {
        assert!(
            ckpt.join(format!("stage_{stage}.json")).exists(),
            "stage_{stage}.json missing"
        );
        assert!(
            ckpt.join(format!("stage_{stage}.meta.json")).exists(),
            "stage_{stage}.meta.json missing"
        );
    }
    let full_report = std::fs::read(ckpt.join("report.json")).expect("report.json");

    // Emulate a crash after the classify stage: the last two stage
    // snapshots never made it to disk.
    for stage in ["shortlist", "inspect"] {
        std::fs::remove_file(ckpt.join(format!("stage_{stage}.json"))).unwrap();
        std::fs::remove_file(ckpt.join(format!("stage_{stage}.meta.json"))).unwrap();
    }

    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .expect("run analyze --resume");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("resumed [\"maps\", \"classify\"]"),
        "expected resume from the checkpoint chain: {stderr}"
    );
    let resumed_report = std::fs::read(ckpt.join("report.json")).expect("report.json");
    assert!(
        full_report == resumed_report,
        "resumed report is not byte-identical to the uninterrupted run"
    );

    // Resuming an intact chain loads all four stages and still
    // reproduces the same report.
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .expect("run analyze --resume again");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("resumed [\"maps\", \"classify\", \"shortlist\", \"inspect\"]"),
        "expected a fully resumed chain: {stderr}"
    );
    let resumed_again = std::fs::read(ckpt.join("report.json")).expect("report.json");
    assert!(full_report == resumed_again);

    // --resume without --checkpoint-dir is a usage error.
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--resume")
        .output()
        .expect("run analyze --resume without dir");
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn experiments_bench_emits_schema_valid_json() {
    let exe = experiments_exe();
    assert!(
        exe.exists(),
        "experiments binary not built at {} — run via workspace `cargo test`",
        exe.display()
    );
    let dir = temp_dir("bench");
    let out = Command::new(&exe)
        .current_dir(&dir)
        .args(["--scale", "quick", "--seed", "5", "--workers", "2", "bench"])
        .output()
        .expect("run experiments bench");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_pipeline.json")).expect("bench json");
    let v: serde::Value = serde::json::from_str(&json).expect("valid JSON");
    for key in ["workers", "domains", "observations", "reps"] {
        assert!(
            matches!(v.get(key), Some(serde::Value::Num(_))),
            "{key} missing or not a number"
        );
    }
    let stages = v
        .get("stages")
        .and_then(|s| s.as_array())
        .expect("stages array");
    assert!(!stages.is_empty(), "no stages benchmarked");
    for stage in stages {
        assert!(matches!(stage.get("stage"), Some(serde::Value::Str(_))));
        for key in [
            "items",
            "serial_ms",
            "parallel_ms",
            "serial_ops_per_sec",
            "parallel_ops_per_sec",
            "speedup",
        ] {
            assert!(
                matches!(stage.get(key), Some(serde::Value::Num(_))),
                "stage field {key} missing or not a number"
            );
        }
    }
    for key in ["metered_ms", "metrics_overhead_pct"] {
        assert!(
            matches!(v.get(key), Some(serde::Value::Num(_))),
            "{key} missing or not a number"
        );
    }
    let trajectory = v
        .get("trajectory")
        .and_then(|t| t.as_array())
        .expect("trajectory array");
    assert_eq!(trajectory.len(), 1, "first bench run appends one point");

    // A second run in the same directory appends to the trajectory
    // instead of overwriting it.
    let out = Command::new(&exe)
        .current_dir(&dir)
        .args(["--scale", "quick", "--seed", "5", "--workers", "2", "bench"])
        .output()
        .expect("run experiments bench again");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.join("BENCH_pipeline.json")).expect("bench json");
    let v: serde::Value = serde::json::from_str(&json).expect("valid JSON");
    let trajectory = v
        .get("trajectory")
        .and_then(|t| t.as_array())
        .expect("trajectory array");
    assert_eq!(trajectory.len(), 2, "second bench run appends a point");
    for point in trajectory {
        for key in [
            "workers",
            "observations",
            "e2e_serial_ms",
            "e2e_parallel_ms",
            "metrics_overhead_pct",
        ] {
            assert!(
                matches!(point.get(key), Some(serde::Value::Num(_))),
                "trajectory field {key} missing or not a number"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_metrics_out_and_trace() {
    let base = temp_dir("metrics");
    let data = base.join("data");
    let out = bin()
        .args(["simulate", "--out"])
        .arg(&data)
        .args(["--seed", "11", "--domains", "1500"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // JSON exposition + --trace narration.
    let metrics_json = base.join("metrics.json");
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--metrics-out")
        .arg(&metrics_json)
        .arg("--trace")
        .output()
        .expect("run analyze --metrics-out");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("-> pipeline.run"),
        "no trace open: {stderr}"
    );
    assert!(
        stderr.contains("<- pipeline.run"),
        "no trace close: {stderr}"
    );
    assert!(stderr.contains("-> stage.inspect"), "{stderr}");

    let json = std::fs::read_to_string(&metrics_json).expect("metrics json");
    let v: serde::Value = serde::json::from_str(&json).expect("valid metrics JSON");
    let keys: Vec<&str> = v
        .as_object()
        .expect("metrics snapshot is an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(keys, ["counters", "gauges", "histograms", "spans"]);
    let counters = v.get("counters").and_then(|c| c.as_object()).unwrap();
    assert!(
        counters.iter().any(|(k, _)| k.starts_with("funnel.")),
        "no funnel counters in {json}"
    );
    // The CLI installs the counting allocator, so the sampling hooks
    // must have produced per-stage allocation gauges.
    let gauges = v.get("gauges").and_then(|g| g.as_object()).unwrap();
    assert!(
        gauges.iter().any(|(k, _)| k.ends_with(".alloc_bytes")),
        "no allocation gauges in {json}"
    );

    // Prometheus exposition.
    let metrics_prom = base.join("metrics.prom");
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--metrics-out")
        .arg(&metrics_prom)
        .args(["--metrics-format", "prom"])
        .output()
        .expect("run analyze --metrics-format prom");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = std::fs::read_to_string(&metrics_prom).expect("metrics prom");
    assert!(
        prom.contains("# TYPE retrodns_funnel_domains_total counter"),
        "{prom}"
    );
    assert!(prom.contains("_bucket{le=\"+Inf\"}"), "{prom}");

    // Bad format is a usage error.
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .args(["--metrics-out", "x.json", "--metrics-format", "xml"])
        .output()
        .expect("run analyze with bad format");
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn analyze_source_resilience_flags() {
    let base = temp_dir("source-flags");
    let data = base.join("data");
    let out = bin()
        .args(["simulate", "--out"])
        .arg(&data)
        .args(["--seed", "13", "--domains", "1500"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The resilience knobs parse and a clean run (no injector reachable
    // from the CLI) emits no degraded verdicts, so the run succeeds even
    // without --allow-degraded.
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .args(["--source-deadline-ms", "500", "--source-retries", "1"])
        .output()
        .expect("run analyze with source flags");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("funnel:"), "{stdout}");
    assert!(
        !stdout.contains("degraded"),
        "clean run reported degradation: {stdout}"
    );

    // --allow-degraded is accepted.
    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--allow-degraded")
        .output()
        .expect("run analyze --allow-degraded");
    assert!(out.status.success());

    // Non-numeric knob values are usage errors.
    for bad in [
        ["--source-deadline-ms", "soon"],
        ["--source-retries", "lots"],
    ] {
        let out = bin()
            .args(["analyze", "--data"])
            .arg(&data)
            .args(bad)
            .output()
            .expect("run analyze with bad value");
        assert!(!out.status.success(), "{bad:?} accepted");
    }

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn analyze_missing_dir_fails_cleanly() {
    let out = bin()
        .args(["analyze", "--data", "/nonexistent/retrodns-data"])
        .output()
        .expect("run analyze");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

/// Simulate a small data set under `base/data` for the robustness tests
/// below; they only need the analyzer to get as far as touching the
/// checkpoint directory.
fn small_data(base: &Path) -> PathBuf {
    let data = base.join("data");
    let out = bin()
        .args(["simulate", "--out"])
        .arg(&data)
        .args(["--seed", "3", "--domains", "600"])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    data
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[test]
fn analyze_stream_held_lock_fails_cleanly() {
    let base = temp_dir("heldlock");
    let data = small_data(&base);
    let ckpt = base.join("checkpoints");
    std::fs::create_dir_all(&ckpt).unwrap();

    // A live holder: PID 1 always exists in the container and the
    // heartbeat is fresh, so the stale-takeover path must NOT fire.
    let lock = format!("{{\"pid\":1,\"token\":1,\"heartbeat_ms\":{}}}", now_ms());
    std::fs::write(ckpt.join("lock.json"), lock).unwrap();

    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--stream")
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .output()
        .expect("run analyze");
    assert!(!out.status.success(), "held lock was not rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("held by pid 1"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn analyze_stream_stale_lock_is_taken_over() {
    let base = temp_dir("stalelock");
    let data = small_data(&base);
    let ckpt = base.join("checkpoints");
    std::fs::create_dir_all(&ckpt).unwrap();

    // A SIGKILLed run leaves its lockfile behind; a dead PID (or an
    // ancient heartbeat) must be treated as abandoned, not block forever.
    let lock = "{\"pid\":4294967294,\"token\":7,\"heartbeat_ms\":0}";
    std::fs::write(ckpt.join("lock.json"), lock).unwrap();

    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--stream")
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .output()
        .expect("run analyze");
    assert!(
        out.status.success(),
        "stale lock blocked the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.join("report.json").exists(), "report.json missing");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn analyze_stream_checkpoint_dir_not_a_directory() {
    let base = temp_dir("notadir");
    let data = small_data(&base);
    let file = base.join("occupied");
    std::fs::write(&file, b"not a directory").unwrap();

    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--stream")
        .arg("--checkpoint-dir")
        .arg(file.join("sub"))
        .output()
        .expect("run analyze");
    assert!(!out.status.success(), "file-as-parent path was accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint dir"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    let _ = std::fs::remove_dir_all(&base);
}

#[cfg(unix)]
#[test]
fn analyze_stream_readonly_checkpoint_dir_fails_cleanly() {
    use std::os::unix::fs::PermissionsExt;

    let base = temp_dir("readonly");
    let data = small_data(&base);
    let ckpt = base.join("checkpoints");
    std::fs::create_dir_all(&ckpt).unwrap();
    std::fs::set_permissions(&ckpt, std::fs::Permissions::from_mode(0o555)).unwrap();

    // Root ignores directory permission bits; probe first and skip when
    // the sandbox can't actually make the directory unwritable.
    if std::fs::write(ckpt.join(".probe"), b"x").is_ok() {
        eprintln!("skipping: running as root, directory permissions not enforced");
        std::fs::set_permissions(&ckpt, std::fs::Permissions::from_mode(0o755)).unwrap();
        let _ = std::fs::remove_dir_all(&base);
        return;
    }

    let out = bin()
        .args(["analyze", "--data"])
        .arg(&data)
        .arg("--stream")
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .output()
        .expect("run analyze");
    std::fs::set_permissions(&ckpt, std::fs::Permissions::from_mode(0o755)).unwrap();
    assert!(!out.status.success(), "read-only dir was accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint dir"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    let _ = std::fs::remove_dir_all(&base);
}
