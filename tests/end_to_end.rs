//! End-to-end integration: simulated world → scans → five-stage pipeline
//! → scored detections.

mod common;

use common::{inputs_for, pipeline_for, run_world};
use retrodns::core::score_detection;
use retrodns::sim::{HijackKind, SimConfig, World};
use std::collections::BTreeSet;

#[test]
fn hijack_detection_is_precise_across_seeds() {
    // Across several seeds: every hijack verdict names a genuinely
    // attacked domain, and a solid majority of planted hijacks are found.
    let mut total_truth = 0usize;
    let mut total_tp = 0usize;
    for seed in [1u64, 2, 3] {
        let (world, report) = run_world(seed);
        for h in &report.hijacked {
            assert!(
                world.ground_truth.is_attacked(&h.domain),
                "seed {seed}: false positive {} ({})",
                h.domain,
                h.dtype.label()
            );
        }
        let truth: Vec<_> = world
            .ground_truth
            .hijacked
            .iter()
            .map(|h| h.domain.clone())
            .collect();
        let s = score_detection(&report.hijacked_domains(), &truth);
        total_truth += truth.len();
        total_tp += s.true_positives;
    }
    assert!(
        total_tp * 3 >= total_truth * 2,
        "aggregate recall too low: {total_tp}/{total_truth}"
    );
}

#[test]
fn targeted_detection_never_confuses_benign_domains() {
    let (world, report) = run_world(5);
    for t in &report.targeted {
        assert!(
            world.ground_truth.is_attacked(&t.domain),
            "targeted verdict on benign domain {}",
            t.domain
        );
    }
}

#[test]
fn pivot_finds_victims_without_observable_infrastructure() {
    // NoInfra victims have no TLS endpoints, hence no usable deployment
    // map; only the pivot can reach them (the fiu.gov.kg case, §5.1).
    let mut found_any = false;
    for seed in [1u64, 2, 3, 4] {
        let (world, report) = run_world(seed);
        let noinfra: BTreeSet<_> = world
            .ground_truth
            .hijacked
            .iter()
            .filter(|h| h.kind == HijackKind::NoInfraHijack)
            .map(|h| h.domain.clone())
            .collect();
        let detected: BTreeSet<_> = report.hijacked_domains().into_iter().collect();
        let recovered: Vec<_> = noinfra.intersection(&detected).collect();
        if !recovered.is_empty() {
            found_any = true;
            // They must have been found via pivot, not via maps.
            for h in &report.hijacked {
                if noinfra.contains(&h.domain) {
                    assert!(
                        matches!(h.dtype.label(), "P-IP" | "P-NS"),
                        "{} should be a pivot discovery, was {}",
                        h.domain,
                        h.dtype.label()
                    );
                }
            }
        }
    }
    assert!(
        found_any,
        "pivot never recovered a no-infra victim in any seed"
    );
}

#[test]
fn detection_is_deterministic() {
    let (_, r1) = run_world(11);
    let (_, r2) = run_world(11);
    assert_eq!(r1.hijacked_domains(), r2.hijacked_domains());
    assert_eq!(r1.targeted_domains(), r2.targeted_domains());
    assert_eq!(r1.funnel.shortlisted, r2.funnel.shortlisted);
}

#[test]
fn unattacked_world_produces_no_hijack_verdicts() {
    // Strip all campaigns: a purely benign Internet.
    let mut config = SimConfig::small(21);
    config.campaigns.clear();
    let world = World::build(config);
    assert!(world.ground_truth.hijacked.is_empty());
    let observations = common::observations_of(&world);
    let report = pipeline_for(&world).run(&inputs_for(&world, &observations));
    assert!(
        report.hijacked.is_empty(),
        "hijack verdicts in a benign world: {:?}",
        report.hijacked_domains()
    );
    // The benign-transient machinery still produces candidates — they
    // must all be pruned, dismissed or at worst "targeted", never
    // "hijacked".
    assert!(
        report.funnel.transient_maps > 0,
        "benign transients should exist"
    );
}

#[test]
fn funnel_shape_matches_paper_ordering() {
    let (_, report) = run_world(9);
    let f = &report.funnel;
    // stable dominates; transient maps are a tiny minority; shortlist
    // narrows them further.
    let stable = f.domain_categories.get("stable").copied().unwrap_or(0);
    assert!(stable * 10 > f.domains_total * 9);
    assert!(f.transient_maps < f.maps_total / 50);
    assert!(f.shortlisted <= f.transient_maps);
}
