//! Cross-crate substrate integration: the ACME/DNS hijack interplay, CT
//! integrity after a full world build, and observation-system consistency
//! with the authoritative DNS history.

use retrodns::cert::authority::{CaKind, CertAuthority};
use retrodns::cert::{AcmeCa, CaId, ChallengeResponder, CtLog, KeyId};
use retrodns::dns::{Actor, DnsDb, RecordData, RecordType, RegistrarId};
use retrodns::sim::{SimConfig, World};
use retrodns::types::{Day, DomainName};

fn d(s: &str) -> DomainName {
    s.parse().unwrap()
}

struct Resolver<'a>(&'a DnsDb);
impl ChallengeResponder for Resolver<'_> {
    fn txt_lookup(&self, name: &DomainName, day: Day) -> Vec<String> {
        self.0.resolve_txt(name, day).unwrap_or_default()
    }
}

/// The attack's crux, demonstrated at the substrate level: DNS control is
/// necessary AND sufficient for DV issuance.
#[test]
fn acme_issuance_tracks_delegation_control() {
    let mut dns = DnsDb::new();
    dns.registrars.add_registrar(RegistrarId(0), "R");
    dns.register_domain(d("victim.com"), RegistrarId(0), Day(0));
    dns.set_delegation(
        &Actor::Owner,
        &d("victim.com"),
        vec![d("ns1.legit.com")],
        Day(0),
    )
    .unwrap();

    let key = KeyId(13);
    let mut le = AcmeCa::new(CertAuthority::new(CaId(1), "LE", CaKind::AcmeDv, 90), 0);
    let mut ct = CtLog::new();

    // Rogue NS carries the token for days 100..; delegation flips only
    // on day 100.
    let token = AcmeCa::challenge_token(&d("mail.victim.com"), key, Day(100));
    dns.set_zone_record(
        &d("ns1.evil.ru"),
        &AcmeCa::challenge_name(&d("mail.victim.com")),
        vec![RecordData::Txt(token)],
        Day(99),
    );
    let actor = Actor::StolenCredentials(d("victim.com"));
    dns.set_delegation(&actor, &d("victim.com"), vec![d("ns1.evil.ru")], Day(100))
        .unwrap();
    dns.set_delegation(
        &Actor::Owner,
        &d("victim.com"),
        vec![d("ns1.legit.com")],
        Day(101),
    )
    .unwrap();

    // Day 99: token exists on rogue NS, but delegation still legit → fail.
    assert!(le
        .request(
            vec![d("mail.victim.com")],
            key,
            Day(99),
            &Resolver(&dns),
            &mut ct
        )
        .is_err());
    // Day 100: delegation flipped → success, logged to CT.
    let cert = le
        .request(
            vec![d("mail.victim.com")],
            key,
            Day(100),
            &Resolver(&dns),
            &mut ct,
        )
        .unwrap();
    assert!(ct.find(cert.id).is_some());
    // Day 101: restored → fail again (token day-bound anyway).
    assert!(le
        .request(
            vec![d("mail.victim.com")],
            key,
            Day(101),
            &Resolver(&dns),
            &mut ct
        )
        .is_err());
    assert!(ct.verify_chain());
}

#[test]
fn world_ct_log_is_chronological_and_verifiable() {
    let world = World::build(SimConfig::small(33));
    assert!(world.ct.verify_chain());
    let mut prev = Day(0);
    for e in world.ct.entries() {
        assert!(e.timestamp >= prev, "CT must be chronological");
        prev = e.timestamp;
    }
    // Every CT-logged cert is resolvable through the crt.sh index.
    for e in world.ct.entries().take(500) {
        assert!(world.crtsh.record(e.cert.id).is_some());
    }
}

#[test]
fn internal_ca_certs_absent_from_ct_but_present_in_scans() {
    let world = World::build(SimConfig::small(33));
    let internal: Vec<_> = world
        .certs
        .values()
        .filter(|c| !world.trust.is_browser_trusted(c.issuer))
        .collect();
    assert!(!internal.is_empty(), "some domains use internal CAs");
    for c in internal.iter().take(50) {
        assert!(
            world.crtsh.record(c.id).is_none(),
            "internal cert {} must not reach CT",
            c.id
        );
    }
}

#[test]
fn pdns_windows_are_consistent_with_authoritative_history() {
    let world = World::build(SimConfig::small(33));
    let window = &world.config.window;
    // For a sample of pDNS A entries, the authoritative DNS must actually
    // have resolved the name to that address at some day in the sighting
    // window (passive DNS never hallucinates).
    let mut checked = 0;
    for e in world.pdns.iter_entries() {
        if e.rtype != RecordType::A || checked >= 200 {
            continue;
        }
        let Some(ip) = e.rdata.as_a() else { continue };
        let segs = world
            .dns
            .resolution_segments(&e.name, RecordType::A, window.start, window.end);
        let consistent = segs.iter().any(|(s, t, answers)| {
            *s <= e.last_seen && *t >= e.first_seen && answers.iter().any(|a| a.as_a() == Some(ip))
        });
        assert!(
            consistent,
            "pDNS claims {} -> {} in {}..{} but authoritative history disagrees",
            e.name, ip, e.first_seen, e.last_seen
        );
        checked += 1;
    }
    assert!(checked >= 100, "sample too small: {checked}");
}

#[test]
fn zone_archive_agrees_with_delegation_history_on_long_runs() {
    let world = World::build(SimConfig::small(33));
    let window = &world.config.window;
    let mut checked = 0;
    for meta in &world.meta {
        if !world.zones.has_access(&meta.domain) || checked >= 50 {
            continue;
        }
        let segs = world
            .dns
            .delegation_segments(&meta.domain, window.start, window.end);
        for (s, t, ns) in segs {
            // Sub-day flips may be invisible; check only multi-week runs.
            if t - s < 21 || ns.is_empty() {
                continue;
            }
            let mid = Day((s.0 + t.0) / 2);
            let archived = world.zones.delegation_on(&meta.domain, mid);
            assert_eq!(
                archived,
                Some(ns.as_slice()),
                "zone archive wrong for {} on {mid}",
                meta.domain
            );
            checked += 1;
        }
    }
    assert!(checked >= 20, "sample too small: {checked}");
}

#[test]
fn scan_records_match_farm_state() {
    let world = World::build(SimConfig::small(33));
    let dataset = world.scan();
    for r in dataset.records().iter().take(500) {
        assert_eq!(
            world.farm.cert_at(r.ip, r.port, r.date),
            Some(r.cert),
            "scan observed a cert the farm was not serving"
        );
    }
}
