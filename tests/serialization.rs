//! Serde round-trips: the derives on the public types are part of the
//! API contract (datasets, reports and configs must be archivable), so
//! every major structure must survive a JSON round-trip unchanged.

mod common;

use retrodns::core::pipeline::{PipelineConfig, Report};
use retrodns::scan::ScanDataset;
use retrodns::sim::{GroundTruth, SimConfig, World};
use retrodns::types::{Asn, Day, DomainName, Ipv4Addr, Ipv4Prefix, StudyWindow};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn value_types_round_trip() {
    let day: Day = "2020-12-21".parse().unwrap();
    assert_eq!(roundtrip(&day), day);
    let asn = Asn(20473);
    assert_eq!(roundtrip(&asn), asn);
    let ip: Ipv4Addr = "94.103.91.159".parse().unwrap();
    assert_eq!(roundtrip(&ip), ip);
    let prefix: Ipv4Prefix = "95.179.128.0/18".parse().unwrap();
    assert_eq!(roundtrip(&prefix), prefix);
    let name: DomainName = "mail.mfa.gov.kg".parse().unwrap();
    assert_eq!(roundtrip(&name), name);
    let window = StudyWindow::default();
    assert_eq!(roundtrip(&window), window);
}

#[test]
fn scan_dataset_round_trips() {
    let world = World::build(SimConfig::small(200));
    let dataset = world.scan();
    let back: ScanDataset = roundtrip(&dataset);
    assert_eq!(back, dataset);
}

#[test]
fn report_and_ground_truth_round_trip() {
    let world = World::build(SimConfig::small(201));
    let observations = common::observations_of(&world);
    let pipeline = common::pipeline_for(&world);
    let report = pipeline.run(&common::InputsBuilder::new(&world, &observations).build());
    let back: Report = roundtrip(&report);
    assert_eq!(back.hijacked_domains(), report.hijacked_domains());
    assert_eq!(back.targeted_domains(), report.targeted_domains());
    assert_eq!(back.funnel.shortlisted, report.funnel.shortlisted);

    let gt: GroundTruth = roundtrip(&world.ground_truth);
    assert_eq!(gt.hijacked.len(), world.ground_truth.hijacked.len());

    let cfg: PipelineConfig = roundtrip(&pipeline.config);
    assert_eq!(
        cfg.classify.transient_max_days,
        pipeline.config.classify.transient_max_days
    );
    let sim_cfg: SimConfig = roundtrip(&world.config);
    assert_eq!(sim_cfg.n_domains, world.config.n_domains);
}

#[test]
fn observation_archives_round_trip() {
    let world = World::build(SimConfig::small(202));
    let pdns: retrodns::dns::PassiveDns = roundtrip(&world.pdns);
    assert_eq!(pdns.len(), world.pdns.len());
    let zones: retrodns::dns::ZoneSnapshotArchive = roundtrip(&world.zones);
    assert_eq!(zones.access_count(), world.zones.access_count());
    let dnssec: retrodns::dns::DnssecArchive = roundtrip(&world.dnssec);
    assert_eq!(dnssec.len(), world.dnssec.len());
}
