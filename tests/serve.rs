//! Integration tests of `retrodns-serve`: the job lifecycle over HTTP,
//! backpressure, graceful-shutdown parking, and crash/resume — including
//! a real SIGKILL of the server binary with the resumed report pinned
//! byte-identical to an uninterrupted golden.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use retrodns::core::pipeline::PipelineConfig;
use retrodns::core::IncrementalAnalyzer;
use retrodns::scan::DomainObservation;
use retrodns::serve::client;
use retrodns::serve::{
    JobData, JobSpec, JobState, JobStatus, ServeConfig, ServerHandle, SupervisorConfig,
};
use retrodns::types::Day;

/// One simulated data directory, shared read-only by every test in this
/// binary (simulation is deterministic and the server never writes into
/// its data dir).
fn data_dir() -> &'static Path {
    static DATA: OnceLock<PathBuf> = OnceLock::new();
    DATA.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("retrodns-serve-data-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = Command::new(env!("CARGO_BIN_EXE_retrodns"))
            .args(["simulate", "--out"])
            .arg(&dir)
            .args(["--seed", "41", "--domains", "900"])
            .output()
            .expect("run simulate");
        assert!(
            out.status.success(),
            "simulate failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        dir
    })
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("retrodns-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Start an in-process server over a fresh checkpoint root.
fn start(root: &Path, queue_capacity: usize, job_workers: usize) -> ServerHandle {
    ServerHandle::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        http_workers: 2,
        supervisor: SupervisorConfig {
            checkpoint_root: root.to_path_buf(),
            job_workers,
            queue_capacity,
            ..SupervisorConfig::default()
        },
        port_file: None,
    })
    .expect("server starts")
}

fn submit(addr: &str, spec: &JobSpec) -> client::HttpResponse {
    let body = serde_json::to_string(spec).expect("spec serializes");
    client::post(addr, "/jobs", &body).expect("submit request")
}

fn status(addr: &str, id: &str) -> JobStatus {
    client::get(addr, &format!("/jobs/{id}"))
        .expect("status request")
        .json()
        .expect("status json")
}

/// Poll until `pred` holds on the job's status.
fn wait_for(addr: &str, id: &str, what: &str, pred: impl Fn(&JobStatus) -> bool) -> JobStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = status(addr, id);
        if pred(&s) {
            return s;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {what}: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The uninterrupted oracle: stream the first `max_weeks` through the
/// analyzer in-process, rendered exactly as the server archives reports.
fn golden_report(workers: usize, max_weeks: u32) -> String {
    let data = JobData::load(data_dir()).expect("data loads");
    let observations = data.observations();
    let inputs = data.inputs(&observations);
    let mut by_date: BTreeMap<Day, Vec<DomainObservation>> = BTreeMap::new();
    for o in &observations {
        by_date.entry(o.date).or_default().push(o.clone());
    }
    let mut analyzer = IncrementalAnalyzer::new(PipelineConfig {
        workers: workers.max(1),
        ..PipelineConfig::default()
    });
    for batch in by_date.values().take(max_weeks as usize) {
        analyzer.ingest_week(batch, &inputs);
    }
    serde_json::to_string_pretty(analyzer.report()).expect("report serializes")
}

#[test]
fn submit_poll_report_lifecycle() {
    let root = temp_root("lifecycle");
    let server = start(&root, 8, 1);
    let addr = server.addr().to_string();

    // Liveness and readiness come up with the server.
    let health = client::get(&addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text().trim(), "ok");
    assert_eq!(client::get(&addr, "/readyz").expect("readyz").status, 200);

    // Unknown jobs are 404; invalid and duplicate ids are rejected.
    assert_eq!(client::get(&addr, "/jobs/nope").expect("get").status, 404);
    let bad = submit(
        &addr,
        &JobSpec {
            id: ".hidden".into(),
            data_dir: data_dir().display().to_string(),
            ..Default::default()
        },
    );
    assert_eq!(bad.status, 400, "{}", bad.text());
    let missing = submit(
        &addr,
        &JobSpec {
            id: "nodata".into(),
            data_dir: "/does/not/exist".into(),
            ..Default::default()
        },
    );
    assert_eq!(missing.status, 400, "{}", missing.text());

    let spec = JobSpec {
        id: "alpha".into(),
        data_dir: data_dir().display().to_string(),
        workers: 2,
        max_weeks: 5,
        ..Default::default()
    };
    let accepted = submit(&addr, &spec);
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let dup = submit(&addr, &spec);
    assert_eq!(dup.status, 409, "{}", dup.text());

    // Polling the report of an unfinished job is an explicit 409/404,
    // never a torn read (it may legitimately finish fast, so only the
    // terminal result is asserted strictly).
    let done = wait_for(&addr, "alpha", "terminal", |s| s.state.terminal());
    assert!(
        matches!(done.state, JobState::Done | JobState::Degraded),
        "{done:?}"
    );
    assert_eq!(done.weeks_done, 5);
    assert_eq!(done.weeks_total, 5);

    // The archived report is byte-identical to the in-process oracle.
    let report = client::get(&addr, "/jobs/alpha/report").expect("report");
    assert_eq!(report.status, 200);
    assert_eq!(
        report.body,
        golden_report(2, 5).as_bytes(),
        "served report differs from the uninterrupted in-process golden"
    );

    // Query surface: list, funnel, degraded set, deltas, verdict, watch,
    // metrics — all answer while the state is terminal.
    let list = client::get(&addr, "/jobs").expect("list");
    assert_eq!(list.status, 200);
    assert!(list.text().contains("alpha"), "{}", list.text());
    assert_eq!(
        client::get(&addr, "/jobs/alpha/funnel")
            .expect("funnel")
            .status,
        200
    );
    assert_eq!(
        client::get(&addr, "/jobs/alpha/degraded")
            .expect("degraded")
            .status,
        200
    );
    assert_eq!(
        client::get(&addr, "/jobs/alpha/deltas")
            .expect("deltas")
            .status,
        200
    );
    let verdict = client::get(&addr, "/jobs/alpha/verdict/example.com").expect("verdict");
    assert_eq!(verdict.status, 200);
    assert!(verdict.text().contains("\"verdict\""), "{}", verdict.text());
    let watch = client::get(&addr, "/watch?since=0&wait_ms=0").expect("watch");
    assert_eq!(watch.status, 200);
    assert!(watch.text().contains("\"events\""), "{}", watch.text());
    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("serve"), "{}", metrics.text());

    // Cancelling a terminal job is a conflict, not a state change.
    let cancel = client::post(&addr, "/jobs/alpha/cancel", "").expect("cancel");
    assert_eq!(cancel.status, 409, "{}", cancel.text());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn backpressure_rejects_with_429_and_retry_after() {
    let root = temp_root("backpressure");
    let server = start(&root, 1, 1);
    let addr = server.addr().to_string();
    let spec = |id: &str| JobSpec {
        id: id.into(),
        data_dir: data_dir().display().to_string(),
        week_delay_ms: 100,
        ..Default::default()
    };

    // Fill the single worker, then the single queue slot.
    assert_eq!(submit(&addr, &spec("running")).status, 202);
    wait_for(&addr, "running", "Running", |s| {
        s.state == JobState::Running
    });
    assert_eq!(submit(&addr, &spec("queued")).status, 202);

    // The queue is full: explicit throttle with a Retry-After hint.
    let throttled = submit(&addr, &spec("overflow"));
    assert_eq!(throttled.status, 429, "{}", throttled.text());
    assert_eq!(throttled.header("retry-after"), Some("2"));

    // Cancelling the queued job frees the slot; the next submit lands.
    assert_eq!(
        client::post(&addr, "/jobs/queued/cancel", "")
            .expect("cancel")
            .status,
        202
    );
    assert_eq!(submit(&addr, &spec("after-cancel")).status, 202);

    let _ = client::post(&addr, "/jobs/running/cancel", "");
    let _ = client::post(&addr, "/jobs/after-cancel/cancel", "");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn graceful_shutdown_parks_job_and_restart_resumes() {
    let root = temp_root("park");
    let server = start(&root, 8, 1);
    let addr = server.addr().to_string();
    let spec = JobSpec {
        id: "park".into(),
        data_dir: data_dir().display().to_string(),
        workers: 1,
        max_weeks: 8,
        week_delay_ms: 60,
        ..Default::default()
    };
    assert_eq!(submit(&addr, &spec).status, 202);
    wait_for(&addr, "park", "2 ingested weeks", |s| s.weeks_done >= 2);

    // Drain: the worker parks the job at its next week boundary and the
    // on-disk state is non-terminal, ready for resume.
    server.shutdown();
    let persisted = std::fs::read_to_string(root.join("park").join("status.json"))
        .expect("status.json persisted");
    assert!(
        persisted.contains("Queued"),
        "parked job should persist as Queued: {persisted}"
    );

    // A fresh server over the same root recovers the job, resumes it
    // mid-stream, and finishes with the exact golden bytes.
    let server = start(&root, 8, 1);
    let addr = server.addr().to_string();
    assert_eq!(client::get(&addr, "/readyz").expect("readyz").status, 200);
    let done = wait_for(&addr, "park", "terminal", |s| s.state.terminal());
    assert!(
        matches!(done.state, JobState::Done | JobState::Degraded),
        "{done:?}"
    );
    assert!(
        done.resumed_weeks >= 2,
        "restart should resume from the checkpoint: {done:?}"
    );
    let report = client::get(&addr, "/jobs/park/report").expect("report");
    assert_eq!(report.status, 200);
    assert_eq!(
        report.body,
        golden_report(1, 8).as_bytes(),
        "parked-and-resumed report differs from the uninterrupted golden"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watch_rejects_stale_cursors() {
    let root = temp_root("watch-cursor");
    let server = start(&root, 8, 1);
    let addr = server.addr().to_string();

    // A fresh watch hands back the incarnation epoch with the cursor.
    #[derive(serde::Deserialize)]
    struct Watch {
        latest: u64,
        epoch: u64,
    }
    let first: Watch = client::get(&addr, "/watch?since=0&wait_ms=0")
        .expect("watch")
        .json()
        .expect("watch json");
    assert_ne!(first.epoch, 0);

    // Cursor from that same incarnation: accepted.
    let ok = client::get(
        &addr,
        &format!(
            "/watch?since={}&epoch={}&wait_ms=0",
            first.latest, first.epoch
        ),
    )
    .expect("watch");
    assert_eq!(ok.status, 200, "{}", ok.text());

    // Cursor minted under another incarnation's epoch: explicit 409, not
    // a silent event gap.
    let stale = client::get(
        &addr,
        &format!("/watch?since=0&epoch={}&wait_ms=0", first.epoch ^ 1),
    )
    .expect("watch");
    assert_eq!(stale.status, 409, "{}", stale.text());

    // Epoch-unaware client holding a cursor beyond this incarnation's
    // log (i.e. from before a restart): also 409.
    let beyond = client::get(&addr, "/watch?since=999999&wait_ms=0").expect("watch");
    assert_eq!(beyond.status, 409, "{}", beyond.text());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Deadlock regression: parking a running job at shutdown counts a
/// metric, and `/metrics` reads the queue depth — with inconsistent lock
/// order a concurrent scrape wedged both sides and `shutdown()` never
/// returned. Hammer `/metrics` across the drain and require completion.
#[test]
fn metrics_scrape_during_shutdown_drain_completes() {
    let root = temp_root("metrics-drain");
    let server = start(&root, 8, 1);
    let addr = server.addr().to_string();
    let spec = JobSpec {
        id: "scrape".into(),
        data_dir: data_dir().display().to_string(),
        workers: 1,
        week_delay_ms: 50,
        ..Default::default()
    };
    assert_eq!(submit(&addr, &spec).status, 202);
    wait_for(&addr, "scrape", "Running", |s| s.state == JobState::Running);

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let (addr, stop) = (addr.clone(), std::sync::Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut scrapes = 0u32;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if let Ok(r) = client::get(&addr, "/metrics") {
                    assert_eq!(r.status, 200);
                    scrapes += 1;
                }
            }
            scrapes
        })
    };

    // The drain parks the running job at its next week boundary while
    // the scraper keeps the metrics lock hot; this returning at all is
    // the assertion.
    server.shutdown();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "scraper never landed a request");

    let persisted = std::fs::read_to_string(root.join("scrape").join("status.json"))
        .expect("status.json persisted");
    assert!(
        persisted.contains("Queued"),
        "parked job should persist as Queued: {persisted}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Spawn the real `retrodns-serve` binary and wait for its port file.
fn spawn_serve(root: &Path, port_file: &Path) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let mut child = Command::new(env!("CARGO_BIN_EXE_retrodns-serve"))
        .arg("--checkpoint-root")
        .arg(root)
        .arg("--port-file")
        .arg(port_file)
        .args(["--job-workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn retrodns-serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            if !addr.trim().is_empty() {
                return (child, addr.trim().to_string());
            }
        }
        if let Ok(Some(code)) = child.try_wait() {
            panic!("retrodns-serve exited before listening: {code}");
        }
        assert!(Instant::now() < deadline, "timed out waiting for port file");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkill_and_restart_resume_is_byte_identical() {
    let root = temp_root("sigkill");
    let port_file = std::env::temp_dir().join(format!(
        "retrodns-serve-sigkill-port-{}",
        std::process::id()
    ));

    let (mut child, addr) = spawn_serve(&root, &port_file);
    let spec = JobSpec {
        id: "kill".into(),
        data_dir: data_dir().display().to_string(),
        workers: 2,
        max_weeks: 10,
        week_delay_ms: 150,
        ..Default::default()
    };
    assert_eq!(submit(&addr, &spec).status, 202);
    wait_for(&addr, "kill", "2 ingested weeks", |s| s.weeks_done >= 2);

    // SIGKILL: no drain, no destructors — at most the in-flight week is
    // lost, everything checkpointed stays durable.
    child.kill().expect("kill server");
    let _ = child.wait();

    let (mut child, addr) = spawn_serve(&root, &port_file);
    let done = wait_for(&addr, "kill", "terminal", |s| s.state.terminal());
    assert!(
        matches!(done.state, JobState::Done | JobState::Degraded),
        "{done:?}"
    );
    assert!(
        done.resumed_weeks >= 1,
        "restart should resume from the checkpoint: {done:?}"
    );
    assert_eq!(done.weeks_done, 10);
    let report = client::get(&addr, "/jobs/kill/report").expect("report");
    assert_eq!(report.status, 200);
    assert_eq!(
        report.body,
        golden_report(2, 10).as_bytes(),
        "post-SIGKILL report differs from the uninterrupted golden"
    );

    assert_eq!(
        client::post(&addr, "/shutdown", "")
            .expect("shutdown")
            .status,
        202
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(code) = child.try_wait().expect("wait") {
            assert!(code.success(), "graceful shutdown exited {code}");
            break;
        }
        assert!(Instant::now() < deadline, "server never exited");
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&port_file);
}
