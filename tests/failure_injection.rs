//! Failure injection: the pipeline must degrade safely when observation
//! sources are missing, truncated or lossy — never inventing hijack
//! verdicts it cannot corroborate.

mod common;

use common::{observations_of, pipeline_for, small_world, InputsBuilder};
use retrodns::cert::CrtShIndex;
use retrodns::dns::PassiveDns;
use retrodns::scan::ScanDataset;
use retrodns::sim::SimConfig;
use retrodns::sim::World;
use retrodns::store::RowsView;

#[test]
fn no_pdns_no_ct_means_no_hijack_verdicts() {
    // Without corroborating sources, suspicious transients must stay
    // inconclusive — the methodology's precision rests on this.
    let world = small_world(101);
    let observations = observations_of(&world);
    let empty_pdns = PassiveDns::new();
    let empty_crtsh = CrtShIndex::default();
    let report = pipeline_for(&world).run(
        &InputsBuilder::new(&world, &observations)
            .pdns(&empty_pdns)
            .crtsh(&empty_crtsh)
            .no_dnssec()
            .build(),
    );
    assert!(
        report.hijacked.is_empty(),
        "hijack verdicts without any corroborating source: {:?}",
        report.hijacked_domains()
    );
    // Funnel still ran: candidates existed but none could be concluded.
    assert!(report.funnel.transient_maps > 0);
}

#[test]
fn empty_scan_dataset_is_handled() {
    let world = small_world(102);
    let report = pipeline_for(&world).run(&InputsBuilder::new(&world, &RowsView(&[])).build());
    assert_eq!(report.funnel.maps_total, 0);
    assert!(report.hijacked.is_empty());
    assert!(report.targeted.is_empty());
}

#[test]
fn truncated_scan_history_degrades_gracefully() {
    // Only the first year of scans: attacks after that are simply not in
    // the data; attacks inside it may still be found, and nothing crashes.
    let world = small_world(103);
    let dataset = world.scan();
    let cutoff = retrodns::types::Day(365);
    let truncated = ScanDataset::from_records(
        dataset
            .records()
            .iter()
            .copied()
            .filter(|r| r.date < cutoff)
            .collect(),
    );
    let observations = world.observations(&truncated);
    let report = pipeline_for(&world).run(&InputsBuilder::new(&world, &observations).build());
    for h in &report.hijacked {
        assert!(
            world.ground_truth.is_attacked(&h.domain),
            "false positive under truncation: {}",
            h.domain
        );
    }
}

#[test]
fn extreme_scan_loss_reduces_recall_not_precision() {
    let mut config = SimConfig::small(104);
    config.scan_miss_rate = 0.6; // 60% probe loss
    let world = World::build(config);
    let observations = observations_of(&world);
    let report = pipeline_for(&world).run(&InputsBuilder::new(&world, &observations).build());
    for h in &report.hijacked {
        assert!(
            world.ground_truth.is_attacked(&h.domain),
            "false positive under heavy loss: {}",
            h.domain
        );
    }
}

#[test]
fn missing_cert_contents_are_tolerated() {
    // The analyst's cert store is partial (e.g. scans that never captured
    // full chains): shortlisting loses sensitivity info but must not
    // panic or hallucinate.
    let world = small_world(105);
    let observations = observations_of(&world);
    let empty_certs = std::collections::HashMap::new();
    // With no cert contents at all, validation quarantines every record
    // (nothing can be corroborated) rather than analyzing blind.
    let report = pipeline_for(&world).run(
        &InputsBuilder::new(&world, &observations)
            .certs(&empty_certs)
            .build(),
    );
    for h in &report.hijacked {
        assert!(world.ground_truth.is_attacked(&h.domain));
    }
    assert!(
        report.funnel.quarantined.contains_key("unknown-cert"),
        "quarantine must account for the uncorroboratable records: {:?}",
        report.funnel.quarantined
    );
}

#[test]
fn faulted_inputs_are_quarantined_and_counted() {
    // Deterministically damaged inputs: corrupt fingerprints and replayed
    // duplicates are rejected *and accounted for* in the report funnel,
    // while precision on the surviving data holds.
    use retrodns::sim::{FaultKind, FaultPlan};
    let world = small_world(106);
    let plan = FaultPlan {
        seed: 9,
        faults: vec![
            FaultKind::CorruptCertFingerprint,
            FaultKind::DuplicateRecords,
        ],
    };
    let damaged = plan.apply_world(&world);
    let report = pipeline_for(&world).run(
        &InputsBuilder::new(&world, &damaged.observations)
            .pdns(&damaged.pdns)
            .build(),
    );
    let q = &report.funnel.quarantined;
    assert!(
        q.get("unknown-cert").copied().unwrap_or(0) > 0,
        "corrupt fingerprints not quarantined: {q:?}"
    );
    assert!(
        q.get("duplicate").copied().unwrap_or(0) > 0,
        "duplicate records not quarantined: {q:?}"
    );
    for h in &report.hijacked {
        assert!(
            world.ground_truth.is_attacked(&h.domain),
            "false positive under fault injection: {}",
            h.domain
        );
    }
}

#[test]
fn source_outage_degrades_instead_of_dying() {
    // A fully dead corroboration source (timeout, error burst, or
    // truncated answers) must complete the run with explicit degraded
    // verdicts — zero hijack verdicts, never a panic — and reproduce
    // the same report bytes on a second run.
    use retrodns::sim::{SourceFaultKind, SourceFaultPlan};
    let world = small_world(107);
    let observations = observations_of(&world);
    for source in ["pdns", "ct", "as2org"] {
        for kind in [
            SourceFaultKind::Timeout,
            SourceFaultKind::ErrorBurst,
            SourceFaultKind::PartialResponse,
        ] {
            let plan = SourceFaultPlan::outage(0xDE6, source, kind);
            let run = || {
                pipeline_for(&world).run(
                    &InputsBuilder::new(&world, &observations)
                        .source_faults(&plan)
                        .build(),
                )
            };
            let report = run();
            assert!(
                report.hijacked.is_empty(),
                "hijack verdicts despite {source} outage ({kind:?}): {:?}",
                report.hijacked_domains()
            );
            assert!(
                !report.degraded.is_empty(),
                "{source} outage ({kind:?}) produced no degraded verdicts"
            );
            for d in &report.degraded {
                assert!(
                    d.missing_sources.iter().any(|s| s == source),
                    "degraded verdict for {} does not name the dead source {source}: {:?}",
                    d.domain,
                    d.missing_sources
                );
            }
            // Funnel mirrors the report's degraded entries per stage.
            let total: usize = report.funnel.degraded.values().sum();
            assert_eq!(total, report.degraded.len());
            assert_eq!(
                serde_json::to_string_pretty(&report).unwrap(),
                serde_json::to_string_pretty(&run()).unwrap(),
                "degraded report not reproducible for {source} ({kind:?})"
            );
        }
    }
}

#[test]
fn latency_spikes_keep_precision() {
    // Spiky latency lets retries recover some queries: the run may
    // conclude fewer candidates, but whatever it convicts must be real
    // and whatever it cannot corroborate must surface as degraded.
    use retrodns::sim::{SourceFaultKind, SourceFaultPlan};
    let world = small_world(108);
    let observations = observations_of(&world);
    let plan = SourceFaultPlan::outage(0xDE7, "pdns", SourceFaultKind::LatencySpike);
    let report = pipeline_for(&world).run(
        &InputsBuilder::new(&world, &observations)
            .source_faults(&plan)
            .build(),
    );
    for h in &report.hijacked {
        assert!(
            world.ground_truth.is_attacked(&h.domain),
            "false positive under latency spikes: {}",
            h.domain
        );
    }
}

#[test]
fn multi_source_faults_are_deterministic_at_any_worker_count() {
    // Several sources degraded at once (partial pdns, flaky CT, slow
    // as2org): the report must still be byte-identical across worker
    // counts — fault fates are keyed on the logical query, not on call
    // order, so chunking cannot change which queries die.
    use retrodns::core::pipeline::{Pipeline, PipelineConfig};
    use retrodns::sim::{SourceFaultKind, SourceFaultPlan};
    use retrodns::types::{CallFate, SourceFaults};

    /// Test-local composite: each member plan afflicts its own source;
    /// the first non-clean fate wins.
    struct MultiSourceFaults(Vec<SourceFaultPlan>);
    impl SourceFaults for MultiSourceFaults {
        fn fate(&self, source: &str, key: u64, attempt: u32) -> CallFate {
            for plan in &self.0 {
                match plan.fate(source, key, attempt) {
                    CallFate::Ok { latency_ms: 0 } => continue,
                    other => return other,
                }
            }
            CallFate::Ok { latency_ms: 0 }
        }
    }

    let world = small_world(110);
    let observations = observations_of(&world);
    let faults = MultiSourceFaults(vec![
        SourceFaultPlan {
            seed: 21,
            source: "pdns".to_string(),
            kind: SourceFaultKind::PartialResponse,
            rate_pct: 40,
        },
        SourceFaultPlan {
            seed: 22,
            source: "ct".to_string(),
            kind: SourceFaultKind::ErrorBurst,
            rate_pct: 30,
        },
        SourceFaultPlan {
            seed: 23,
            source: "as2org".to_string(),
            kind: SourceFaultKind::LatencySpike,
            rate_pct: 50,
        },
    ]);
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let pipeline = Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(
            &InputsBuilder::new(&world, &observations)
                .source_faults(&faults)
                .build(),
        );
        for h in &report.hijacked {
            assert!(
                world.ground_truth.is_attacked(&h.domain),
                "false positive under multi-source faults: {}",
                h.domain
            );
        }
        reports.push(serde_json::to_string_pretty(&report).unwrap());
    }
    assert_eq!(reports[0], reports[1], "workers 1 vs 2 diverged");
    assert_eq!(reports[0], reports[2], "workers 1 vs 8 diverged");
}

#[test]
fn idle_injector_changes_nothing_at_any_worker_count() {
    // An injector that never fires must leave the report byte-identical
    // to a run without any injector, at every worker count: the
    // resilience layer is invisible until a source actually fails.
    use retrodns::core::pipeline::{Pipeline, PipelineConfig};
    use retrodns::sim::{SourceFaultKind, SourceFaultPlan};
    let world = small_world(109);
    let observations = observations_of(&world);
    let idle = SourceFaultPlan {
        seed: 1,
        source: "pdns".to_string(),
        kind: SourceFaultKind::ErrorBurst,
        rate_pct: 0,
    };
    let inputs = |faults| {
        InputsBuilder::new(&world, &observations)
            .maybe_source_faults(faults)
            .build()
    };
    let baseline = serde_json::to_string_pretty(&pipeline_for(&world).run(&inputs(None))).unwrap();
    for workers in [1, 2, 8] {
        let pipeline = Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(&inputs(Some(&idle)));
        assert_eq!(
            serde_json::to_string_pretty(&report).unwrap(),
            baseline,
            "idle injector perturbed the report at workers={workers}"
        );
        assert!(report.degraded.is_empty());
    }
}
