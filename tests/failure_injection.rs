//! Failure injection: the pipeline must degrade safely when observation
//! sources are missing, truncated or lossy — never inventing hijack
//! verdicts it cannot corroborate.

use retrodns::cert::CrtShIndex;
use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns::dns::PassiveDns;
use retrodns::scan::ScanDataset;
use retrodns::sim::{SimConfig, World};

fn pipeline_for(world: &World) -> Pipeline {
    Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        ..PipelineConfig::default()
    })
}

#[test]
fn no_pdns_no_ct_means_no_hijack_verdicts() {
    // Without corroborating sources, suspicious transients must stay
    // inconclusive — the methodology's precision rests on this.
    let world = World::build(SimConfig::small(101));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let empty_pdns = PassiveDns::new();
    let empty_crtsh = CrtShIndex::default();
    let report = pipeline_for(&world).run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &empty_pdns,
        crtsh: &empty_crtsh,
        dnssec: None,
    });
    assert!(
        report.hijacked.is_empty(),
        "hijack verdicts without any corroborating source: {:?}",
        report.hijacked_domains()
    );
    // Funnel still ran: candidates existed but none could be concluded.
    assert!(report.funnel.transient_maps > 0);
}

#[test]
fn empty_scan_dataset_is_handled() {
    let world = World::build(SimConfig::small(102));
    let report = pipeline_for(&world).run(&AnalystInputs {
        observations: &[],
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
    });
    assert_eq!(report.funnel.maps_total, 0);
    assert!(report.hijacked.is_empty());
    assert!(report.targeted.is_empty());
}

#[test]
fn truncated_scan_history_degrades_gracefully() {
    // Only the first year of scans: attacks after that are simply not in
    // the data; attacks inside it may still be found, and nothing crashes.
    let world = World::build(SimConfig::small(103));
    let dataset = world.scan();
    let cutoff = retrodns::types::Day(365);
    let truncated = ScanDataset::from_records(
        dataset
            .records()
            .iter()
            .copied()
            .filter(|r| r.date < cutoff)
            .collect(),
    );
    let observations = world.observations(&truncated);
    let report = pipeline_for(&world).run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
    });
    for h in &report.hijacked {
        assert!(
            world.ground_truth.is_attacked(&h.domain),
            "false positive under truncation: {}",
            h.domain
        );
    }
}

#[test]
fn extreme_scan_loss_reduces_recall_not_precision() {
    let mut config = SimConfig::small(104);
    config.scan_miss_rate = 0.6; // 60% probe loss
    let world = World::build(config);
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let report = pipeline_for(&world).run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
    });
    for h in &report.hijacked {
        assert!(
            world.ground_truth.is_attacked(&h.domain),
            "false positive under heavy loss: {}",
            h.domain
        );
    }
}

#[test]
fn missing_cert_contents_are_tolerated() {
    // The analyst's cert store is partial (e.g. scans that never captured
    // full chains): shortlisting loses sensitivity info but must not
    // panic or hallucinate.
    let world = World::build(SimConfig::small(105));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let empty_certs = std::collections::HashMap::new();
    let report = pipeline_for(&world).run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &empty_certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
    });
    for h in &report.hijacked {
        assert!(world.ground_truth.is_attacked(&h.domain));
    }
}
