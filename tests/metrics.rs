//! Metrics-layer integration tests: the `funnel.*` counter namespace
//! must reconcile *exactly* with [`Report::funnel`], metrics collection
//! must not perturb report bytes across worker counts, and the
//! `--metrics-out` JSON schema must stay deterministic.

mod common;

use retrodns::core::metrics::{MetricsRegistry, MetricsSnapshot};
use retrodns::core::pipeline::{FunnelStats, PipelineConfig};
use retrodns::sim::FaultPlan;
use std::collections::BTreeMap;

/// The counter set [`Report::funnel`] must map to — the same mirror the
/// pipeline's `record_funnel` writes. Field-for-field, no omissions.
fn expected_funnel_counters(f: &FunnelStats) -> BTreeMap<String, u64> {
    let mut c: BTreeMap<String, u64> = BTreeMap::new();
    for (reason, n) in &f.quarantined {
        c.insert(format!("funnel.quarantined.{reason}"), *n as u64);
    }
    c.insert("funnel.domains_total".into(), f.domains_total as u64);
    c.insert("funnel.maps_total".into(), f.maps_total as u64);
    for (cat, n) in &f.domain_categories {
        c.insert(format!("funnel.domain_category.{cat}"), *n as u64);
    }
    for (cat, n) in &f.map_categories {
        c.insert(format!("funnel.map_category.{cat}"), *n as u64);
    }
    c.insert("funnel.transient_maps".into(), f.transient_maps as u64);
    c.insert("funnel.shortlisted".into(), f.shortlisted as u64);
    c.insert("funnel.truly_anomalous".into(), f.truly_anomalous as u64);
    for (reason, n) in &f.pruned {
        c.insert(format!("funnel.pruned.{reason}"), *n as u64);
    }
    c.insert("funnel.dismissed_stale".into(), f.dismissed_stale as u64);
    c.insert("funnel.inconclusive".into(), f.inconclusive as u64);
    for (stage, n) in &f.degraded {
        c.insert(format!("funnel.degraded.{stage}"), *n as u64);
    }
    for (t, n) in &f.hijacks_by_type {
        c.insert(format!("funnel.hijacks.{t}"), *n as u64);
    }
    c
}

/// The `funnel.*` counters actually recorded in a snapshot.
fn recorded_funnel_counters(snapshot: &MetricsSnapshot) -> BTreeMap<String, u64> {
    snapshot
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("funnel."))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Every funnel field has its counter, every `funnel.*` counter has its
/// field, and the values agree — on a clean world.
#[test]
fn metrics_reconcile_with_funnel() {
    let world = common::small_world(0xAC0);
    let observations = common::observations_of(&world);
    let mut metrics = MetricsRegistry::new();
    let report = common::pipeline_for(&world)
        .run_metered(&common::inputs_for(&world, &observations), &mut metrics);
    assert_eq!(
        recorded_funnel_counters(&metrics.snapshot()),
        expected_funnel_counters(&report.funnel),
        "funnel.* counters drifted from Report::funnel"
    );
    // The pipeline found something, so the reconciliation is not vacuous.
    assert!(report.funnel.maps_total > 0);
    assert!(!report.hijacked.is_empty());
}

/// The reconciliation also holds when input validation actually fires:
/// damaged inputs populate `funnel.quarantined.*`.
#[test]
fn metrics_reconcile_with_funnel_under_faults() {
    let world = common::small_world(0xAC1);
    let damaged = FaultPlan::all(0xFA_AC1).apply_world(&world);
    let mut metrics = MetricsRegistry::new();
    let report = common::pipeline_for(&world).run_metered(
        &common::inputs_for(&world, &damaged.observations),
        &mut metrics,
    );
    assert!(
        !report.funnel.quarantined.is_empty(),
        "fault plan produced no quarantined records; test is vacuous"
    );
    assert_eq!(
        recorded_funnel_counters(&metrics.snapshot()),
        expected_funnel_counters(&report.funnel)
    );
}

/// Metrics collection must not perturb report bytes, at any worker
/// count: a metered run reproduces the plain serial run byte for byte.
#[test]
fn metered_report_is_byte_identical_across_workers() {
    let world = common::small_world(0xAC2);
    let observations = common::observations_of(&world);
    let inputs = common::inputs_for(&world, &observations);
    let baseline = common::pipeline_for(&world).run(&inputs);
    let baseline_json = serde_json::to_string_pretty(&baseline).expect("serializes");
    for workers in [1, 2, 8] {
        let pipeline = retrodns::core::pipeline::Pipeline::new(PipelineConfig {
            window: world.config.window.clone(),
            workers,
            ..PipelineConfig::default()
        });
        let mut metrics = MetricsRegistry::new();
        let report = pipeline.run_metered(&inputs, &mut metrics);
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(
            json == baseline_json,
            "metered report diverged at workers={workers} ({} vs {} bytes)",
            json.len(),
            baseline_json.len()
        );
        // The metrics themselves reconcile at every worker count too.
        assert_eq!(
            recorded_funnel_counters(&metrics.snapshot()),
            expected_funnel_counters(&report.funnel)
        );
    }
}

/// The snapshot's JSON schema is stable: fixed top-level keys, fixed
/// histogram shape, and identical counters across identical runs.
#[test]
fn snapshot_schema_is_deterministic() {
    let run = || {
        let world = common::small_world(0xAC3);
        let observations = common::observations_of(&world);
        let mut metrics = MetricsRegistry::new();
        common::pipeline_for(&world)
            .run_metered(&common::inputs_for(&world, &observations), &mut metrics);
        metrics.snapshot()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.counters, b.counters,
        "counters vary across identical runs"
    );

    let value: serde::Value = serde::json::from_str(&a.to_json()).expect("snapshot JSON parses");
    let keys: Vec<&str> = value
        .as_object()
        .expect("snapshot is an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(keys, ["counters", "gauges", "histograms", "spans"]);

    // Every span the pipeline claims to have run, in open order.
    let span_names: Vec<&str> = a.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        span_names,
        [
            "pipeline.run",
            "stage.quarantine",
            "stage.map_build",
            "stage.classify",
            "stage.shortlist",
            "stage.inspect",
            "stage.pivot",
        ]
    );
    assert!(a.spans.iter().all(|s| s.wall_ms >= 0.0));

    // Histograms keep the fixed 10-bound + overflow bucket shape.
    for (name, h) in &a.histograms {
        assert_eq!(
            h.counts.len(),
            11,
            "histogram {name} has wrong bucket count"
        );
        assert_eq!(h.counts.iter().sum::<u64>(), h.count, "histogram {name}");
    }
    assert!(a.histograms.contains_key("stage.wall_ms"));
    assert!(a.histograms.contains_key("map_build.shard_items"));

    // Stage gauges exist for every stage.
    for stage in [
        "quarantine",
        "map_build",
        "classify",
        "shortlist",
        "inspect",
        "pivot",
    ] {
        assert!(
            a.gauges.contains_key(&format!("stage.{stage}.wall_ms")),
            "missing stage.{stage}.wall_ms gauge"
        );
        assert!(
            a.gauges.contains_key(&format!("stage.{stage}.items")),
            "missing stage.{stage}.items gauge"
        );
    }
}

/// Checkpointed runs record their checkpoint traffic: a cold run saves
/// every stage, a resumed run loads every stage, and the loaded run's
/// funnel counters still reconcile.
#[test]
fn checkpoint_events_are_counted() {
    let world = common::small_world(0xAC4);
    let observations = common::observations_of(&world);
    let inputs = common::inputs_for(&world, &observations);
    let pipeline = common::pipeline_for(&world);
    let dir = std::env::temp_dir().join(format!("retrodns-metrics-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = retrodns::core::CheckpointStore::open(&dir).expect("open store");

    let mut cold = MetricsRegistry::new();
    let report_cold = pipeline.run_resumable_metered(&inputs, &mut store, &mut cold);
    let cold_snap = cold.snapshot();
    for stage in ["maps", "classify", "shortlist", "inspect"] {
        assert_eq!(
            cold_snap.counters.get(&format!("checkpoint.saved.{stage}")),
            Some(&1),
            "cold run did not save {stage}"
        );
    }
    // The first load attempt missed (no chain yet), breaking the chain.
    assert_eq!(
        cold_snap.counters.get("checkpoint.invalid.missing"),
        Some(&1)
    );

    let mut warm = MetricsRegistry::new();
    let report_warm = pipeline.run_resumable_metered(&inputs, &mut store, &mut warm);
    let warm_snap = warm.snapshot();
    for stage in ["maps", "classify", "shortlist", "inspect"] {
        assert_eq!(
            warm_snap
                .counters
                .get(&format!("checkpoint.loaded.{stage}")),
            Some(&1),
            "warm run did not load {stage}"
        );
    }
    assert_eq!(
        serde_json::to_string_pretty(&report_cold).unwrap(),
        serde_json::to_string_pretty(&report_warm).unwrap(),
        "resume changed report bytes"
    );
    assert_eq!(
        recorded_funnel_counters(&warm_snap),
        expected_funnel_counters(&report_warm.funnel),
        "resumed run's funnel counters drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
