//! Streaming ↔ batch equivalence: ingesting N scan-weeks one at a time
//! through [`IncrementalAnalyzer`] must yield a report byte-identical
//! (as JSON) to batch-analyzing all N weeks at once — at any worker
//! count, with or without killing and resuming the analyzer from
//! checkpoints between weeks — and the per-week [`WeekDelta`]s must
//! compose back into the final report without losing or duplicating a
//! verdict change.

mod common;

use common::{week_slices, world_up_to_week, InputsBuilder};
use proptest::prelude::*;
use retrodns::core::checkpoint::CheckpointStore;
use retrodns::core::incremental::{IncrementalAnalyzer, WeekDelta};
use retrodns::core::pipeline::{Pipeline, PipelineConfig, Report};
use retrodns::scan::DomainObservation;
use retrodns::sim::World;
use retrodns::store::RowsView;

/// Worker counts the byte-identity contract is pinned at.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn config_for(world: &World, workers: usize) -> PipelineConfig {
    PipelineConfig {
        window: world.config.window.clone(),
        workers,
        ..PipelineConfig::default()
    }
}

fn report_json(report: &Report) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Stream every week through one analyzer, returning the final report
/// and the per-week deltas.
fn stream_weeks(
    world: &World,
    observations: &[DomainObservation],
    workers: usize,
) -> (Report, Vec<WeekDelta>) {
    let view = RowsView(observations);
    let inputs = InputsBuilder::new(world, &view).build();
    let mut analyzer = IncrementalAnalyzer::new(config_for(world, workers));
    let deltas: Vec<WeekDelta> = week_slices(observations)
        .iter()
        .map(|week| analyzer.ingest_week(week, &inputs))
        .collect();
    (analyzer.report().clone(), deltas)
}

#[test]
fn streaming_equals_batch_on_the_quick_fixture() {
    // 130 weeks of the golden seed: the first attack campaign (days
    // 300–900) has concluded, so the pipeline issues real verdicts and
    // the stream produces real verdict deltas.
    let (world, observations) = world_up_to_week(101, 130);
    let view = RowsView(&observations);
    let inputs = InputsBuilder::new(&world, &view).build();
    let batch = Pipeline::new(config_for(&world, 1)).run(&inputs);
    let (streamed, deltas) = stream_weeks(&world, &observations, 1);
    assert_eq!(
        report_json(&streamed),
        report_json(&batch),
        "one-week-at-a-time ingestion diverged from the batch report"
    );
    assert!(
        !batch.hijacked.is_empty() || !batch.targeted.is_empty(),
        "fixture too short to exercise verdicts — move the truncation point"
    );
    // The verdicts appeared *during* the stream, not only at the end:
    // some mid-stream delta carries the first upsert.
    let first_change = deltas.iter().find(|d| d.has_verdict_changes());
    assert!(
        first_change.is_some(),
        "verdicts in the final report but no delta ever carried a change"
    );
}

#[test]
fn streaming_matches_batch_at_every_worker_count() {
    let (world, observations) = world_up_to_week(101, 130);
    let view = RowsView(&observations);
    let inputs = InputsBuilder::new(&world, &view).build();
    let baseline = report_json(&Pipeline::new(config_for(&world, 1)).run(&inputs));
    for workers in [1usize, 2, 8] {
        let batch = Pipeline::new(config_for(&world, workers)).run(&inputs);
        assert_eq!(
            report_json(&batch),
            baseline,
            "batch report changed at workers={workers}"
        );
        let (streamed, _) = stream_weeks(&world, &observations, workers);
        assert_eq!(
            report_json(&streamed),
            baseline,
            "streamed report diverged at workers={workers}"
        );
    }
}

#[test]
fn kill_and_resume_between_every_week_is_invisible() {
    let (world, observations) = world_up_to_week(101, 130);
    let view = RowsView(&observations);
    let inputs = InputsBuilder::new(&world, &view).build();
    let batch = report_json(&Pipeline::new(config_for(&world, 1)).run(&inputs));

    let dir = std::env::temp_dir().join(format!("retrodns-stream-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).expect("open checkpoint dir");
    for (i, week) in week_slices(&observations).iter().enumerate() {
        // A brand-new analyzer every week: everything it knows about
        // weeks 0..i must come back from the checkpoint layer.
        let mut analyzer = IncrementalAnalyzer::resume(config_for(&world, 1), &store)
            .unwrap_or_else(|| IncrementalAnalyzer::new(config_for(&world, 1)));
        assert_eq!(analyzer.weeks(), i as u32, "resume lost ingested weeks");
        analyzer.ingest_week(week, &inputs);
        analyzer.checkpoint(&store).expect("checkpoint write");
    }
    let finished =
        IncrementalAnalyzer::resume(config_for(&world, 1), &store).expect("final state resumes");
    assert_eq!(
        report_json(finished.report()),
        batch,
        "kill-and-resume streaming diverged from the batch report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn week_deltas_compose_into_the_final_report() {
    let (world, observations) = world_up_to_week(101, 130);
    let (final_report, deltas) = stream_weeks(&world, &observations, 1);
    // Replay every delta over an empty (pre-week-0) report.
    let mut replayed = Report::default();
    for d in &deltas {
        d.apply(&mut replayed);
    }
    assert_eq!(
        report_json(&replayed),
        report_json(&final_report),
        "replaying the delta stream lost or duplicated a verdict change"
    );
}

proptest! {
    // Each case builds a world and runs both paths — keep the case
    // count small; the matrix below still covers seeds × lengths ×
    // worker counts.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn streaming_equals_batch_for_random_prefixes(
        seed in 0xAC0u64..0xAC5,
        weeks in 3usize..12,
        worker_i in 0usize..3,
    ) {
        let workers = WORKER_COUNTS[worker_i];
        let (world, observations) = world_up_to_week(seed, weeks);
        let view = RowsView(&observations);
        let inputs = InputsBuilder::new(&world, &view).build();
        let batch = Pipeline::new(config_for(&world, workers)).run(&inputs);
        let (streamed, _) = stream_weeks(&world, &observations, workers);
        prop_assert_eq!(
            report_json(&streamed),
            report_json(&batch),
            "streaming diverged for seed={} weeks={} workers={}",
            seed, weeks, workers
        );
    }

    #[test]
    fn deltas_compose_for_random_prefixes(
        seed in 0xAC0u64..0xAC5,
        weeks in 3usize..12,
    ) {
        let (world, observations) = world_up_to_week(seed, weeks);
        let (final_report, deltas) = stream_weeks(&world, &observations, 1);
        let mut replayed = Report::default();
        for d in &deltas {
            d.apply(&mut replayed);
        }
        prop_assert_eq!(
            report_json(&replayed),
            report_json(&final_report),
            "delta replay diverged for seed={} weeks={}",
            seed, weeks
        );
    }

    #[test]
    fn kill_and_resume_equals_batch_for_random_prefixes(
        seed in 0xAC0u64..0xAC5,
        weeks in 3usize..10,
        worker_i in 0usize..3,
    ) {
        let workers = WORKER_COUNTS[worker_i];
        let (world, observations) = world_up_to_week(seed, weeks);
        let view = RowsView(&observations);
        let inputs = InputsBuilder::new(&world, &view).build();
        let batch = Pipeline::new(config_for(&world, workers)).run(&inputs);
        let dir = std::env::temp_dir().join(format!(
            "retrodns-stream-prop-{}-{seed}-{weeks}-{workers}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open checkpoint dir");
        for week in week_slices(&observations) {
            let mut analyzer = IncrementalAnalyzer::resume(config_for(&world, workers), &store)
                .unwrap_or_else(|| IncrementalAnalyzer::new(config_for(&world, workers)));
            analyzer.ingest_week(&week, &inputs);
            analyzer.checkpoint(&store).expect("checkpoint write");
        }
        let finished = IncrementalAnalyzer::resume(config_for(&world, workers), &store)
            .expect("final state resumes");
        prop_assert_eq!(
            report_json(finished.report()),
            report_json(&batch),
            "kill-and-resume diverged for seed={} weeks={} workers={}",
            seed, weeks, workers
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
