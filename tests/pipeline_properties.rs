//! Property-style integration tests over randomized worlds: invariants
//! that must hold for any seed.

mod common;

use common::{inputs_for, observations_of, pipeline_for, small_world};
use retrodns::core::classify::{classify, ClassifyConfig};
use retrodns::core::map::MapBuilder;
use std::collections::BTreeSet;

/// Deployment maps partition the observations: every routed observation
/// lands in exactly one deployment of exactly one map.
#[test]
fn maps_partition_observations() {
    let world = small_world(77);
    let observations = observations_of(&world);
    let builder = MapBuilder::new(world.config.window.clone());
    let maps = builder.build(&observations);

    // Index maps: (domain, period id) -> (date set, ip set).
    let mut dates_by_map: std::collections::HashMap<_, BTreeSet<_>> = Default::default();
    let mut ips_by_map: std::collections::HashMap<_, BTreeSet<_>> = Default::default();
    let periods = world.config.window.periods();
    for m in &maps {
        let key = (m.domain.clone(), m.period.id);
        let dates = dates_by_map.entry(key.clone()).or_default();
        let ips = ips_by_map.entry(key).or_default();
        for d in &m.deployments {
            dates.extend(d.dates.iter().copied());
            ips.extend(d.ips.iter().copied());
        }
    }
    // Every observation key must appear in its (domain, period) map.
    for o in &observations {
        if o.asn.is_none() {
            continue;
        }
        let period = periods
            .iter()
            .find(|p| p.contains(o.date))
            .expect("in window");
        let key = (o.domain.clone(), period.id);
        assert!(
            dates_by_map
                .get(&key)
                .map(|s| s.contains(&o.date))
                .unwrap_or(false),
            "observation date missing from maps: {} {}",
            o.domain,
            o.date
        );
        assert!(
            ips_by_map
                .get(&key)
                .map(|s| s.contains(&o.ip))
                .unwrap_or(false),
            "observation ip missing from maps: {} {}",
            o.domain,
            o.ip
        );
    }
}

/// Classification is total and deterministic: every map gets exactly one
/// pattern, and re-classification agrees.
#[test]
fn classification_is_total_and_stable() {
    let world = small_world(78);
    let observations = observations_of(&world);
    let builder = MapBuilder::new(world.config.window.clone());
    let maps = builder.build(&observations);
    let cfg = ClassifyConfig::default();
    for m in &maps {
        let p1 = classify(m, &cfg);
        let p2 = classify(m, &cfg);
        assert_eq!(p1, p2);
        assert!(matches!(
            p1.category(),
            "stable" | "transition" | "transient" | "noisy"
        ));
    }
}

/// Serial and parallel map building agree on a full world's observations.
#[test]
fn parallel_map_building_agrees_with_serial() {
    let world = small_world(79);
    let observations = observations_of(&world);
    let builder = MapBuilder::new(world.config.window.clone());
    let serial = builder.build(&observations);
    let parallel = builder.build_parallel(&observations, 4);
    assert_eq!(serial, parallel);
}

/// Tightening the transient threshold can only shrink the transient set.
#[test]
fn transient_threshold_is_monotone() {
    let world = small_world(80);
    let observations = observations_of(&world);
    let builder = MapBuilder::new(world.config.window.clone());
    let maps = builder.build(&observations);
    let count_at = |days: u32| {
        let cfg = ClassifyConfig {
            transient_max_days: days,
            ..ClassifyConfig::default()
        };
        maps.iter()
            .filter(|m| classify(m, &cfg).category() == "transient")
            .count()
    };
    let (t30, t90, t150) = (count_at(30), count_at(90), count_at(150));
    assert!(t30 <= t90, "{t30} > {t90}");
    assert!(t90 <= t150, "{t90} > {t150}");
}

/// Every hijack verdict carries actionable evidence: an attacker IP or a
/// rogue nameserver, and at least one corroborating source.
#[test]
fn hijack_verdicts_carry_evidence() {
    let world = small_world(81);
    let observations = observations_of(&world);
    let report = pipeline_for(&world).run(&inputs_for(&world, &observations));
    for h in &report.hijacked {
        assert!(
            !h.attacker_ips.is_empty() || !h.attacker_ns.is_empty(),
            "{}: no attacker infrastructure recorded",
            h.domain
        );
        assert!(
            h.pdns_corroborated || h.ct_corroborated,
            "{}: no corroborating source",
            h.domain
        );
        // Detected attacker infrastructure must match ground truth for
        // true positives.
        if let Some(gt) = world
            .ground_truth
            .hijacked
            .iter()
            .find(|g| g.domain == h.domain)
        {
            if h.pdns_corroborated && !h.attacker_ips.is_empty() {
                assert!(
                    h.attacker_ips.contains(&gt.attacker_ip) || !h.attacker_ns.is_empty(),
                    "{}: detected infra {:?} does not include true {}",
                    h.domain,
                    h.attacker_ips,
                    gt.attacker_ip
                );
            }
        }
    }
}
