//! Golden-report snapshot: the canonical pipeline output for
//! `SimConfig::small(101)` is committed under `tests/golden/` and the
//! current pipeline must reproduce it byte for byte. This pins the
//! entire observable behavior of the five-stage pipeline — verdicts,
//! funnel accounting, quarantine histogram, field ordering — against
//! unintentional drift.
//!
//! When a pipeline change *intentionally* alters the report, regenerate
//! the snapshot and commit it alongside the change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```

mod common;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/report_small_101.json"
);

#[test]
fn report_matches_golden_snapshot() {
    let (_, report) = common::run_world(101);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden snapshot");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden snapshot missing; create it with UPDATE_GOLDEN=1 cargo test --test golden_report",
    );
    assert!(
        json == golden,
        "report JSON diverged from the golden snapshot ({} vs {} bytes); \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 \
         cargo test --test golden_report",
        json.len(),
        golden.len()
    );
}
