//! Shared world-building and pipeline helpers for the integration tests.
//!
//! Each integration-test binary compiles this module separately and uses
//! only a subset of the helpers, hence the crate-level `dead_code` allow.

#![allow(dead_code)]

use retrodns::cert::{CertId, Certificate, CrtShIndex};
use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig, Report};
use retrodns::dns::PassiveDns;
use retrodns::scan::DomainObservation;
use retrodns::sim::{SimConfig, World};
use retrodns::store::ObservationView;
use retrodns::types::{Day, SourceFaults};
use std::collections::{BTreeMap, HashMap};

/// A small (`SimConfig::small`) world for the given seed.
pub fn small_world(seed: u64) -> World {
    World::build(SimConfig::small(seed))
}

/// Scan a world and annotate the records into observations.
pub fn observations_of(world: &World) -> Vec<DomainObservation> {
    let dataset = world.scan();
    world.observations(&dataset)
}

/// A default pipeline configured for the world's study window.
pub fn pipeline_for(world: &World) -> Pipeline {
    Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        ..PipelineConfig::default()
    })
}

/// Full analyst inputs over a world's own data sets (DNSSEC included).
/// `observations` may be a row vector or a columnar store — anything
/// implementing [`ObservationView`].
pub fn inputs_for<'a>(
    world: &'a World,
    observations: &'a dyn ObservationView,
) -> AnalystInputs<'a> {
    AnalystInputs {
        observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    }
}

/// Build a small world for `seed`, scan it, and run the full pipeline.
pub fn run_world(seed: u64) -> (World, Report) {
    let world = small_world(seed);
    let observations = observations_of(&world);
    let report = pipeline_for(&world).run(&inputs_for(&world, &observations));
    (world, report)
}

/// One shared way to assemble [`AnalystInputs`], defaulting every source
/// to the world's own datasets (DNSSEC included). Tests that damage or
/// remove a source override just that field instead of restating the
/// whole struct:
///
/// ```ignore
/// let inputs = InputsBuilder::new(&world, &observations)
///     .pdns(&empty_pdns)
///     .no_dnssec()
///     .build();
/// ```
pub struct InputsBuilder<'a> {
    world: &'a World,
    observations: &'a dyn ObservationView,
    certs: Option<&'a HashMap<CertId, Certificate>>,
    pdns: Option<&'a PassiveDns>,
    crtsh: Option<&'a CrtShIndex>,
    dnssec: bool,
    source_faults: Option<&'a dyn SourceFaults>,
}

impl<'a> InputsBuilder<'a> {
    /// Inputs over the world's own sources and the given observations.
    pub fn new(world: &'a World, observations: &'a dyn ObservationView) -> InputsBuilder<'a> {
        InputsBuilder {
            world,
            observations,
            certs: None,
            pdns: None,
            crtsh: None,
            dnssec: true,
            source_faults: None,
        }
    }

    /// Replace the analyst's certificate-contents store.
    pub fn certs(mut self, certs: &'a HashMap<CertId, Certificate>) -> Self {
        self.certs = Some(certs);
        self
    }

    /// Replace the passive-DNS database.
    pub fn pdns(mut self, pdns: &'a PassiveDns) -> Self {
        self.pdns = Some(pdns);
        self
    }

    /// Replace the crt.sh index.
    pub fn crtsh(mut self, crtsh: &'a CrtShIndex) -> Self {
        self.crtsh = Some(crtsh);
        self
    }

    /// Run without the DNSSEC measurement archive.
    pub fn no_dnssec(mut self) -> Self {
        self.dnssec = false;
        self
    }

    /// Inject source-level faults.
    pub fn source_faults(mut self, faults: &'a dyn SourceFaults) -> Self {
        self.source_faults = Some(faults);
        self
    }

    /// Optionally inject source-level faults (`None` leaves all sources
    /// healthy) — for tests parameterized over fault plans.
    pub fn maybe_source_faults(mut self, faults: Option<&'a dyn SourceFaults>) -> Self {
        self.source_faults = faults;
        self
    }

    /// Assemble the [`AnalystInputs`].
    pub fn build(self) -> AnalystInputs<'a> {
        AnalystInputs {
            observations: self.observations,
            asdb: &self.world.geo.asdb,
            certs: self.certs.unwrap_or(&self.world.certs),
            pdns: self.pdns.unwrap_or(&self.world.pdns),
            crtsh: self.crtsh.unwrap_or(&self.world.crtsh),
            dnssec: self.dnssec.then_some(&self.world.dnssec),
            source_faults: self.source_faults,
        }
    }
}

/// A small world for `seed` truncated to its first `n` scan weeks:
/// returns the world plus only the observations dated within those
/// weeks. The knob the streaming suite turns to compare "history up to
/// week n" against incremental ingestion.
pub fn world_up_to_week(seed: u64, n: usize) -> (World, Vec<DomainObservation>) {
    let world = small_world(seed);
    let observations = observations_of(&world);
    let dates = world.config.window.scan_dates();
    let kept: Vec<DomainObservation> = match dates.get(..n) {
        Some(head) => {
            let cutoff = head.last().copied();
            observations
                .into_iter()
                .filter(|o| Some(o.date) <= cutoff)
                .collect()
        }
        None => observations,
    };
    (world, kept)
}

/// Split observations into per-scan-date batches, ascending — the
/// stream the incremental analyzer ingests one week at a time.
pub fn week_slices(observations: &[DomainObservation]) -> Vec<Vec<DomainObservation>> {
    let mut by_date: BTreeMap<Day, Vec<DomainObservation>> = BTreeMap::new();
    for o in observations {
        by_date.entry(o.date).or_default().push(o.clone());
    }
    by_date.into_values().collect()
}
