//! Shared world-building and pipeline helpers for the integration tests.
//!
//! Each integration-test binary compiles this module separately and uses
//! only a subset of the helpers, hence the crate-level `dead_code` allow.

#![allow(dead_code)]

use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig, Report};
use retrodns::scan::DomainObservation;
use retrodns::sim::{SimConfig, World};
use retrodns::store::ObservationView;

/// A small (`SimConfig::small`) world for the given seed.
pub fn small_world(seed: u64) -> World {
    World::build(SimConfig::small(seed))
}

/// Scan a world and annotate the records into observations.
pub fn observations_of(world: &World) -> Vec<DomainObservation> {
    let dataset = world.scan();
    world.observations(&dataset)
}

/// A default pipeline configured for the world's study window.
pub fn pipeline_for(world: &World) -> Pipeline {
    Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        ..PipelineConfig::default()
    })
}

/// Full analyst inputs over a world's own data sets (DNSSEC included).
/// `observations` may be a row vector or a columnar store — anything
/// implementing [`ObservationView`].
pub fn inputs_for<'a>(
    world: &'a World,
    observations: &'a dyn ObservationView,
) -> AnalystInputs<'a> {
    AnalystInputs {
        observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    }
}

/// Build a small world for `seed`, scan it, and run the full pipeline.
pub fn run_world(seed: u64) -> (World, Report) {
    let world = small_world(seed);
    let observations = observations_of(&world);
    let report = pipeline_for(&world).run(&inputs_for(&world, &observations));
    (world, report)
}
