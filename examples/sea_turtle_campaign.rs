//! Drive a full Sea-Turtle-shaped campaign through the simulator and
//! watch the pipeline's five stages narrow 2,000 domains down to the
//! actual victims — printing the funnel, the Table-2-style verdicts and
//! the attacker-infrastructure reuse the pivot exploits.
//!
//! ```text
//! cargo run --release --example sea_turtle_campaign
//! ```

use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns::core::report::{render_table2, render_table5, DomainInfo};
use retrodns::sim::{SimConfig, World};
use std::collections::BTreeMap;

fn main() {
    // One wide registrar-compromise campaign (the Sea Turtle shape:
    // multiple countries, reused VPS infrastructure, 2018-2019).
    let mut config = SimConfig::small(0x5EA_701);
    config.campaigns.truncate(1);
    config.campaigns[0].hijacks = 10;
    config.campaigns[0].t2_hijacks = 3;
    config.campaigns[0].no_infra_victims = 3;
    config.campaigns[0].infra_ips = 4;

    let world = World::build(config);
    println!("== ground truth (what the simulator knows) ==");
    for h in &world.ground_truth.hijacked {
        println!(
            "  {:?} {}  sub={}  attacker_ip={}  windows={:?}",
            h.kind, h.domain, h.sub, h.attacker_ip, h.windows
        );
    }

    // Infrastructure reuse: how many victims share each attacker IP?
    let mut reuse: BTreeMap<String, usize> = BTreeMap::new();
    for h in &world.ground_truth.hijacked {
        *reuse.entry(h.attacker_ip.to_string()).or_insert(0) += 1;
    }
    println!("\nattacker IP reuse (paper §5.1: infra reused across targets):");
    for (ip, n) in &reuse {
        println!("  {ip}: {n} victims");
    }

    // The analyst's run.
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let pipeline = Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    });

    println!("\n== the funnel ==");
    let f = &report.funnel;
    println!("  {} domains observed", f.domains_total);
    println!("  {} transient deployment maps", f.transient_maps);
    println!(
        "  {} shortlisted after heuristics (pruned: {:?})",
        f.shortlisted, f.pruned
    );
    println!(
        "  {} dismissed at inspection (stale certs)",
        f.dismissed_stale
    );
    println!(
        "  {} hijacked ({:?})",
        report.hijacked.len(),
        f.hijacks_by_type
    );
    println!("  {} targeted", report.targeted.len());

    println!("\n== Table 2 (detected) ==");
    let info = |d: &retrodns::types::DomainName| -> Option<DomainInfo> {
        world.meta_of(d).map(|m| DomainInfo {
            sector: m.sector.to_string(),
            country: Some(m.country),
            org_name: m.org_name.clone(),
        })
    };
    print!("{}", render_table2(&report.hijacked, &info));

    println!("\n== Table 5 (attacker networks) ==");
    print!(
        "{}",
        render_table5(&report.hijacked, &report.targeted, &world.geo.asdb.orgs)
    );

    // How did the pivot-only victims get found?
    println!("== pivot discoveries (victims with no usable deployment map) ==");
    for h in report
        .hijacked
        .iter()
        .filter(|h| matches!(h.dtype.label(), "P-IP" | "P-NS"))
    {
        let ns: Vec<String> = h.attacker_ns.iter().map(|n| n.to_string()).collect();
        println!(
            "  {} via {}  (rogue NS: [{}])",
            h.domain,
            h.dtype.label(),
            ns.join(", ")
        );
    }
}
