//! The Kyrgyzstan case study (paper §5.1), reconstructed end to end at
//! the substrate level: a stable ministry domain is hijacked through a
//! stolen registrar account, the attacker obtains a real DV certificate
//! through the ACME DNS-01 flow *during* the sub-day delegation flip, and
//! the retroactive analyst then pieces the attack together from pDNS, CT,
//! and scan evidence — including the pivot that finds a second victim
//! with no observable TLS infrastructure (the fiu.gov.kg case).
//!
//! ```text
//! cargo run --example kyrgyzstan_casestudy
//! ```

use retrodns::cert::authority::{CaKind, CertAuthority};
use retrodns::cert::{AcmeCa, CaId, ChallengeResponder, CrtShIndex, CtLog, KeyId};
use retrodns::dns::{Actor, DnsDb, PassiveDns, RecordData, RegistrarId};
use retrodns::types::{Day, DomainName};

fn d(s: &str) -> DomainName {
    s.parse().unwrap()
}

/// Lets the CA resolve through the live DNS database.
struct Resolver<'a>(&'a DnsDb);
impl ChallengeResponder for Resolver<'_> {
    fn txt_lookup(&self, name: &DomainName, day: Day) -> Vec<String> {
        self.0.resolve_txt(name, day).unwrap_or_default()
    }
}

fn main() {
    let mut dns = DnsDb::new();
    let mut ct = CtLog::new();
    let mut le = AcmeCa::new(
        CertAuthority::new(CaId(1), "Let's Encrypt", CaKind::AcmeDv, 90),
        3_810_000_000, // crt.sh-flavored id space
    );

    // --- Legitimate setup: mfa.gov.kg on Infocom nameservers ---------
    dns.registrars.add_registrar(RegistrarId(1), "KG Registrar");
    for dom in ["mfa.gov.kg", "fiu.gov.kg"] {
        dns.register_domain(d(dom), RegistrarId(1), Day(0));
        dns.set_delegation(
            &Actor::Owner,
            &d(dom),
            vec![d("ns1.infocom.kg"), d("ns2.infocom.kg")],
            Day(0),
        )
        .unwrap();
    }
    let legit_ip = "31.192.250.13".parse().unwrap();
    for ns in ["ns1.infocom.kg", "ns2.infocom.kg"] {
        dns.set_zone_record(
            &d(ns),
            &d("mail.mfa.gov.kg"),
            vec![RecordData::A(legit_ip)],
            Day(0),
        );
        dns.set_zone_record(
            &d(ns),
            &d("mail.fiu.gov.kg"),
            vec![RecordData::A(legit_ip)],
            Day(0),
        );
    }

    // --- Attacker staging (December 2020) ------------------------------
    let flip_day: Day = "2020-12-20".parse::<Day>().unwrap();
    let attacker_key = KeyId(0x5EA);
    let attacker_ip = "94.103.91.159".parse().unwrap();
    let rogue = [d("ns1.kg-infocom.ru"), d("ns2.kg-infocom.ru")];
    for ns in &rogue {
        dns.set_glue(ns, vec!["94.103.90.2".parse().unwrap()], flip_day - 2);
        dns.set_zone_record(
            ns,
            &d("mail.mfa.gov.kg"),
            vec![RecordData::A(attacker_ip)],
            flip_day - 1,
        );
    }

    // The ACME challenge token, staged on the rogue nameservers.
    let cert_day = flip_day + 1; // 2020-12-21: the paper's issuance date
    let token = AcmeCa::challenge_token(&d("mail.mfa.gov.kg"), attacker_key, cert_day);
    for ns in &rogue {
        dns.set_zone_record(
            ns,
            &AcmeCa::challenge_name(&d("mail.mfa.gov.kg")),
            vec![RecordData::Txt(token.clone())],
            cert_day,
        );
    }

    // --- The attack: flip, validate, restore ---------------------------
    let stolen = Actor::StolenCredentials(d("mfa.gov.kg"));
    dns.set_delegation(&stolen, &d("mfa.gov.kg"), rogue.to_vec(), cert_day)
        .unwrap();

    // Before the flip the CA would refuse:
    let early = le.request(
        vec![d("mail.mfa.gov.kg")],
        attacker_key,
        flip_day - 1,
        &Resolver(&dns),
        &mut ct,
    );
    println!(
        "issuance before the flip: {:?}",
        early.map(|c| c.id).map_err(|e| e.to_string())
    );

    // During the flip the DNS-01 challenge validates — the CA cannot tell
    // the requester is not the owner:
    let cert = le
        .request(
            vec![d("mail.mfa.gov.kg")],
            attacker_key,
            cert_day,
            &Resolver(&dns),
            &mut ct,
        )
        .expect("hijacked DNS satisfies domain validation");
    println!(
        "issuance during the flip: {} for {:?} (browser-trusted DV cert)",
        cert.id, cert.names
    );

    // Restore the delegation the next day — total exposure under 24h.
    dns.set_delegation(
        &Actor::Owner,
        &d("mfa.gov.kg"),
        vec![d("ns1.infocom.kg"), d("ns2.infocom.kg")],
        cert_day + 1,
    )
    .unwrap();

    // A later harvest window, one day, 2020-12-28 style; also hit fiu.
    let harvest: Day = "2020-12-28".parse().unwrap();
    dns.set_delegation(&stolen, &d("mfa.gov.kg"), rogue.to_vec(), harvest)
        .unwrap();
    dns.set_delegation(
        &Actor::Owner,
        &d("mfa.gov.kg"),
        vec![d("ns1.infocom.kg"), d("ns2.infocom.kg")],
        harvest + 1,
    )
    .unwrap();
    let stolen_fiu = Actor::StolenCredentials(d("fiu.gov.kg"));
    for ns in &rogue {
        dns.set_zone_record(
            ns,
            &d("mail.fiu.gov.kg"),
            vec![RecordData::A("178.20.41.140".parse().unwrap())],
            harvest,
        );
    }
    dns.set_delegation(&stolen_fiu, &d("fiu.gov.kg"), rogue.to_vec(), harvest)
        .unwrap();
    dns.set_delegation(
        &Actor::Owner,
        &d("fiu.gov.kg"),
        vec![d("ns1.infocom.kg"), d("ns2.infocom.kg")],
        harvest + 1,
    )
    .unwrap();

    // --- What the observation systems captured -------------------------
    let mut pdns = PassiveDns::new();
    for day in [Day(0), flip_day - 5, cert_day, harvest, harvest + 30] {
        for name in [d("mail.mfa.gov.kg"), d("mail.fiu.gov.kg")] {
            if let Ok(ips) = dns.resolve_a(&name, day) {
                for ip in ips {
                    pdns.observe(&name, RecordData::A(ip), day);
                }
            }
        }
        for dom in [d("mfa.gov.kg"), d("fiu.gov.kg")] {
            if let Some(ns_set) = dns.delegation_of(&dom, day) {
                for ns in ns_set {
                    pdns.observe(&dom, RecordData::Ns(ns.clone()), day);
                }
            }
        }
    }

    // --- Retroactive analysis ------------------------------------------
    println!("\n--- the analyst's view, years later ---");
    let crtsh = CrtShIndex::build(&ct);
    for r in crtsh.search_registered(&d("mfa.gov.kg")) {
        println!(
            "crt.sh: cert {} for {:?} issued {}",
            r.id, r.names, r.issued
        );
    }
    for e in pdns.ns_history(&d("mfa.gov.kg")) {
        println!(
            "pDNS NS: {} -> {}  seen {}..{} ({}d)",
            e.name,
            e.rdata,
            e.first_seen,
            e.last_seen,
            e.visibility_days()
        );
    }
    for e in pdns.lookups(&d("mail.mfa.gov.kg"), None) {
        println!(
            "pDNS A:  {} -> {}  seen {}..{}",
            e.name, e.rdata, e.first_seen, e.last_seen
        );
    }

    // The pivot: who else used ns1.kg-infocom.ru?
    println!("\npivot on {}:", rogue[0]);
    for e in pdns.domains_delegated_to(&rogue[0]) {
        println!(
            "  {} delegated to rogue NS {}..{} — {}",
            e.name,
            e.first_seen,
            e.last_seen,
            if e.name == d("mfa.gov.kg") {
                "the known victim"
            } else {
                "ANOTHER victim, despite no TLS infrastructure of its own"
            }
        );
    }
}
