//! Render every deployment-map pattern of Figures 3–5 and show the
//! classifier's verdict on each — the at-a-glance catalog of what
//! "stable", "transition" and "transient" look like in scan data.
//!
//! ```text
//! cargo run --example pattern_gallery
//! ```

use retrodns::core::classify::{classify, ClassifyConfig};
use retrodns::core::map::MapBuilder;
use retrodns::core::render::render_map;
use retrodns::sim::archetypes::all_archetypes;
use retrodns::types::StudyWindow;

fn main() {
    let builder = MapBuilder::new(StudyWindow::default());
    let cfg = ClassifyConfig::default();
    for arch in all_archetypes() {
        println!("================================================================");
        println!("{}: {}", arch.label, arch.description);
        let maps = builder.build(&arch.observations);
        let pattern = classify(&maps[0], &cfg);
        print!("{}", render_map(&maps[0], Some(&pattern)));
        println!(
            "expected {}, classified {} — {}",
            arch.expected,
            pattern.label(),
            if pattern.label() == arch.expected {
                "correct"
            } else {
                "MISMATCH"
            }
        );
        println!();
    }
    println!("Legend: each lane is one deployment; # marks scans where the");
    println!("deployment answered. T1/T2 lanes are the attack signatures the");
    println!("pipeline shortlists; everything else is pruned as benign.");
}
