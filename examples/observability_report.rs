//! Reproduce the paper's §5.3 observability analysis: how visible are
//! these attacks in zone files, passive DNS and weekly certificate scans?
//! Spoiler (theirs and ours): barely — which is the whole point of
//! combining sources.
//!
//! ```text
//! cargo run --release --example observability_report
//! ```

use retrodns::core::observability::observability;
use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns::sim::{SimConfig, World};

fn main() {
    let world = World::build(SimConfig::small(0x0B5E));
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    let pipeline = Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    });

    let stats = observability(
        &report.hijacked,
        &world.pdns,
        &dataset,
        &world.zones,
        &world.crtsh,
    );

    println!("detected hijacks analyzed: {}", report.hijacked.len());
    println!();
    println!("-- passive DNS (the attack itself) --");
    println!(
        "attack resolutions captured for {} hijacks; visible <=1 day for {:.0}%",
        stats.with_pdns_attack_evidence,
        stats.frac_pdns_one_day() * 100.0
    );
    println!(
        "per-hijack visibility days: {:?}",
        stats.pdns_visibility_days
    );
    println!("(paper: 51% of hijacked domains had at most one day of evidence)");
    println!();
    println!("-- weekly TLS scans (the attacker infrastructure) --");
    println!(
        "malicious certs reached by scans: {}; within 8 days of issuance: {:.0}%",
        stats.cert_scanned,
        stats.frac_cert_within_8_days() * 100.0
    );
    println!(
        "seen in exactly one scan: {:.0}%  two scans: {:.0}%",
        stats.frac_cert_in_n_scans(1) * 100.0,
        stats.frac_cert_in_n_scans(2) * 100.0
    );
    println!("(paper: >50% within 8 days; >50% in one scan, ~20% in two)");
    println!();
    println!("-- daily zone files --");
    println!(
        "victims under zone-accessible TLDs: {}; rogue NS visible in a snapshot: {}",
        stats.zone_accessible, stats.zone_visible
    );
    println!("(paper: invisible for 2 of 3 accessible victims; 1 day for the third)");
    println!();
    println!("Every source alone is nearly blind; their intersection is the method.");
}
