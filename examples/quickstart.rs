//! Quickstart: simulate a world, run the five-stage pipeline, print the
//! detected hijacks and score them against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns::core::score_detection;
use retrodns::sim::{SimConfig, World};

fn main() {
    // 1. Build a synthetic Internet: ~2k domains, two attacker campaigns,
    //    four years of weekly TLS scans, passive DNS, CT logs.
    let world = World::build(SimConfig::small(42));
    println!(
        "world: {} domains, {} planted hijacks, {} planted targets",
        world.config.n_domains,
        world.ground_truth.hijacked.len(),
        world.ground_truth.targeted.len()
    );

    // 2. Run the weekly Internet-wide scan and annotate it.
    let dataset = world.scan();
    let observations = world.observations(&dataset);
    println!(
        "scanned: {} records over {} scan dates",
        dataset.len(),
        dataset.dates().len()
    );

    // 3. Run the paper's five-stage pipeline as a third-party analyst:
    //    deployment maps -> patterns -> shortlist -> inspect -> pivot.
    let pipeline = Pipeline::new(PipelineConfig {
        window: world.config.window.clone(),
        ..PipelineConfig::default()
    });
    let report = pipeline.run(&AnalystInputs {
        observations: &observations,
        asdb: &world.geo.asdb,
        certs: &world.certs,
        pdns: &world.pdns,
        crtsh: &world.crtsh,
        dnssec: Some(&world.dnssec),
        source_faults: None,
    });

    // 4. Inspect the findings.
    println!("\ndetected hijacked domains:");
    for h in &report.hijacked {
        println!(
            "  {:<5} {}  sub={}  attacker={}  pDNS={} CT={}",
            h.dtype.label(),
            h.domain,
            h.sub
                .as_ref()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            h.attacker_ips
                .first()
                .map(|ip| ip.to_string())
                .unwrap_or_else(|| "-".into()),
            h.pdns_corroborated,
            h.ct_corroborated,
        );
    }
    println!("\ndetected targeted domains:");
    for t in &report.targeted {
        println!("  {}", t.domain);
    }

    // 5. The simulator retains ground truth — score the detection.
    let truth: Vec<_> = world
        .ground_truth
        .hijacked
        .iter()
        .map(|h| h.domain.clone())
        .collect();
    let score = score_detection(&report.hijacked_domains(), &truth);
    println!(
        "\nhijack detection: precision {:.2}, recall {:.2}, f1 {:.2}",
        score.precision(),
        score.recall(),
        score.f1()
    );
    println!(
        "funnel: {} domains -> {} transient maps -> {} shortlisted -> {} hijacked",
        report.funnel.domains_total,
        report.funnel.transient_maps,
        report.funnel.shortlisted,
        report.hijacked.len()
    );
}
