//! # retrodns — facade crate
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use retrodns::core::...` etc. See the individual
//! crates for the real documentation:
//!
//! * [`types`] — days, periods, ASNs, country codes, IPs, domain names
//! * [`asdb`] — prefix-to-AS, AS-to-org, geolocation tables
//! * [`cert`] — certificates, CAs, CT logs, crt.sh index, ACME issuance
//! * [`dns`] — zones, registrars, resolution, zone snapshots, passive DNS
//! * [`scan`] — weekly TLS scanning and annotated CUIDS-like datasets
//! * [`store`] — compressed columnar observation store with zero-copy views
//! * [`sim`] — the synthetic Internet world and attacker campaigns
//! * [`core`] — deployment maps, pattern classification, shortlisting,
//!   inspection, pivot analysis: the paper's contribution
//! * [`serve`] — the crash-tolerant long-running analysis service

#![warn(missing_docs)]
pub use retrodns_asdb as asdb;
pub use retrodns_cert as cert;
pub use retrodns_core as core;
pub use retrodns_dns as dns;
pub use retrodns_scan as scan;
pub use retrodns_serve as serve;
pub use retrodns_sim as sim;
pub use retrodns_store as store;
pub use retrodns_types as types;
