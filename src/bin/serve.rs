//! `retrodns-serve` — the long-running analysis service.
//!
//! ```text
//! retrodns-serve --checkpoint-root DIR [--addr HOST:PORT] [--http-workers N]
//!                [--job-workers N] [--queue-capacity N] [--max-data-mb N]
//!                [--retry-after-secs N] [--lock-stale-ms N] [--port-file PATH]
//!                [--chaos-abort-weeks N [--chaos-abort-phase before|after]]
//! ```
//!
//! Jobs checkpoint into `<checkpoint-root>/<job-id>/` after every ingested
//! week; on restart the server rediscovers non-terminal jobs there and
//! resumes them mid-stream. `--chaos-abort-weeks` is the crash-harness
//! hook: the process `abort()`s (SIGKILL-equivalent — no destructors, no
//! flush) after this incarnation ingests N weeks, with `--chaos-abort-phase
//! before` landing the crash before that week's checkpoint is written.
//! Stop gracefully with `POST /shutdown`. See DESIGN.md §13.

use std::path::PathBuf;
use std::process::ExitCode;

use retrodns::serve::{ChaosAbort, ServeConfig, SupervisorConfig};

fn usage() -> &'static str {
    "usage:\n  retrodns-serve --checkpoint-root DIR [--addr HOST:PORT] [--http-workers N]\n                 [--job-workers N] [--queue-capacity N] [--max-data-mb N]\n                 [--retry-after-secs N] [--lock-stale-ms N] [--port-file PATH]\n                 [--chaos-abort-weeks N [--chaos-abort-phase before|after]]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut checkpoint_root: Option<PathBuf> = None;
    let mut chaos_weeks: u64 = 0;
    let mut chaos_before = false;
    let mut it = args.iter();
    macro_rules! next_parse {
        ($flag:expr) => {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("{} expects a value", $flag);
                    return ExitCode::FAILURE;
                }
            }
        };
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--checkpoint-root" => checkpoint_root = it.next().map(PathBuf::from),
            "--addr" => match it.next() {
                Some(v) => cfg.addr = v.clone(),
                None => {
                    eprintln!("--addr expects HOST:PORT");
                    return ExitCode::FAILURE;
                }
            },
            "--port-file" => cfg.port_file = it.next().map(PathBuf::from),
            "--http-workers" => cfg.http_workers = next_parse!("--http-workers"),
            "--job-workers" => cfg.supervisor.job_workers = next_parse!("--job-workers"),
            "--queue-capacity" => cfg.supervisor.queue_capacity = next_parse!("--queue-capacity"),
            "--max-data-mb" => {
                let mb: u64 = next_parse!("--max-data-mb");
                cfg.supervisor.max_data_bytes = mb * 1024 * 1024;
            }
            "--retry-after-secs" => {
                cfg.supervisor.retry_after_secs = next_parse!("--retry-after-secs")
            }
            "--lock-stale-ms" => cfg.supervisor.lock_stale_ms = next_parse!("--lock-stale-ms"),
            "--chaos-abort-weeks" => chaos_weeks = next_parse!("--chaos-abort-weeks"),
            "--chaos-abort-phase" => match it.next().map(String::as_str) {
                Some("before") => chaos_before = true,
                Some("after") => chaos_before = false,
                _ => {
                    eprintln!("--chaos-abort-phase expects before or after");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(root) = checkpoint_root else {
        eprintln!("--checkpoint-root DIR is required\n{}", usage());
        return ExitCode::FAILURE;
    };
    cfg.supervisor = SupervisorConfig {
        checkpoint_root: root,
        ..cfg.supervisor
    };
    if chaos_weeks > 0 {
        if chaos_before && chaos_weeks < 2 {
            // A before-checkpoint abort at week 1 would leave this
            // incarnation with zero durable progress; the restarted server
            // would re-reach week 1 and die there forever.
            eprintln!("--chaos-abort-phase before requires --chaos-abort-weeks >= 2");
            return ExitCode::FAILURE;
        }
        cfg.supervisor.chaos = Some(ChaosAbort {
            after_weeks: chaos_weeks,
            before_checkpoint: chaos_before,
        });
    }
    match retrodns::serve::run(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
