//! `retrodns` — the command-line workflow.
//!
//! ```text
//! retrodns simulate --out DIR [--seed N] [--domains N]   write a world's data sets as JSON
//! retrodns analyze  --data DIR [--dnssec-signal] [--score] [--stream]
//!                   [--checkpoint-dir DIR [--resume]]    run the pipeline over them
//!                   [--metrics-out PATH [--metrics-format json|prom]] [--trace]
//!                   [--source-deadline-ms N] [--source-retries N] [--allow-degraded]
//! retrodns info     --data DIR                            summarize the data sets
//! ```
//!
//! `simulate` produces exactly the files a real deployment would convert
//! from its feeds (scans, certificate contents, network metadata, passive
//! DNS, crt.sh dump, zone and DNSSEC archives), so `analyze` is the
//! adoption surface: swap the synthetic JSON for converted real data and
//! the pipeline runs unchanged.

use retrodns::core::inspect::InspectConfig;
use retrodns::core::metrics::{CountingAlloc, MetricsRegistry};
use retrodns::core::pipeline::{AnalystInputs, Pipeline, PipelineConfig};
use retrodns::core::report::{render_table2, render_table3, DomainInfo};
use retrodns::core::score_detection;
use retrodns::core::{DirLock, IncrementalAnalyzer, SourcePolicy};
use retrodns::serve::JobData;
use retrodns::sim::{DomainMeta, SimConfig, World};
use retrodns::types::DomainName;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// Count allocations so `--metrics-out` can report per-stage allocation
// deltas (`stage.*.alloc_bytes`); without this the hooks stay silent.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Ground truth sidecar written by `simulate` for `analyze --score`.
#[derive(serde::Serialize, serde::Deserialize)]
struct TruthFile {
    hijacked: Vec<DomainName>,
    targeted: Vec<DomainName>,
}

fn save<T: serde::Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    let path = dir.join(name);
    let json = serde_json::to_vec(value).expect("serializable");
    std::fs::write(&path, json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn load<T: serde::de::DeserializeOwned>(dir: &Path, name: &str) -> Result<T, String> {
    let path = dir.join(name);
    let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

fn simulate(out: &Path, seed: u64, domains: usize) -> Result<(), String> {
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
    let config = SimConfig {
        seed,
        n_domains: domains,
        ..SimConfig::default()
    };
    eprintln!("building world ({domains} domains, seed {seed:#x})...");
    let world = World::build(config);
    let dataset = world.scan();
    eprintln!(
        "world ready: {} scan records, {} certificates, {} hijacks planted",
        dataset.len(),
        world.certs.len(),
        world.ground_truth.hijacked.len()
    );
    let io = |e: std::io::Error| e.to_string();
    save(out, "scans.json", &dataset).map_err(io)?;
    save(out, "certs.json", &world.certs).map_err(io)?;
    save(out, "asdb.json", &world.geo.asdb).map_err(io)?;
    save(out, "pdns.json", &world.pdns).map_err(io)?;
    save(out, "crtsh.json", &world.crtsh).map_err(io)?;
    save(out, "zones.json", &world.zones).map_err(io)?;
    save(out, "dnssec.json", &world.dnssec).map_err(io)?;
    save(out, "trust.json", &world.trust).map_err(io)?;
    save(out, "meta.json", &world.meta).map_err(io)?;
    save(
        out,
        "truth.json",
        &TruthFile {
            hijacked: world
                .ground_truth
                .hijacked
                .iter()
                .map(|h| h.domain.clone())
                .collect(),
            targeted: world
                .ground_truth
                .targeted
                .iter()
                .map(|t| t.domain.clone())
                .collect(),
        },
    )
    .map_err(io)?;
    Ok(())
}

/// The analysis inputs ([`JobData`], shared with `retrodns-serve` so the
/// two front ends can never drift on the on-disk contract) plus the
/// CLI-only rendering sidecar.
struct LoadedData {
    data: JobData,
    meta: Vec<DomainMeta>,
}

fn load_data(dir: &Path) -> Result<LoadedData, String> {
    Ok(LoadedData {
        data: JobData::load(dir)?,
        meta: load(dir, "meta.json").unwrap_or_default(),
    })
}

/// Checkpointing options for `analyze`.
struct CheckpointOpts {
    /// Stage-snapshot directory (`--checkpoint-dir`).
    dir: PathBuf,
    /// Reuse a valid checkpoint chain instead of clearing it (`--resume`).
    resume: bool,
}

/// Metrics exposition format for `--metrics-out` (`--metrics-format`).
#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    /// Deterministic pretty JSON (the default).
    Json,
    /// Prometheus text exposition 0.0.4.
    Prom,
}

/// Observability options for `analyze`.
struct MetricsOpts {
    /// Where to write the metrics snapshot (`--metrics-out`).
    out: Option<PathBuf>,
    /// Exposition format for the snapshot file.
    format: MetricsFormat,
    /// Narrate span open/close events to stderr (`--trace`).
    trace: bool,
}

/// Corroboration-source resilience options for `analyze`.
struct SourceOpts {
    /// Per-call deadline and retry budget (`--source-deadline-ms`,
    /// `--source-retries`); breaker settings keep their defaults.
    policy: SourcePolicy,
    /// Treat degraded verdicts as an acceptable outcome (`--allow-degraded`).
    /// Without it any degraded verdict fails the run after reporting.
    allow_degraded: bool,
}

fn analyze(
    dir: &Path,
    dnssec_signal: bool,
    score: bool,
    stream: bool,
    ckpt: Option<CheckpointOpts>,
    metrics_opts: MetricsOpts,
    source_opts: SourceOpts,
) -> Result<(), String> {
    let LoadedData { data, meta } = load_data(dir)?;
    eprintln!(
        "loaded: {} scan records, {} certs, {} pDNS tuples, {} CT records",
        data.dataset.len(),
        data.certs.len(),
        data.pdns.len(),
        data.crtsh.len()
    );
    let observations = data.observations();
    let pipeline = Pipeline::new(PipelineConfig {
        workers: 4,
        inspect: InspectConfig {
            use_dnssec_signal: dnssec_signal,
            ..InspectConfig::default()
        },
        sources: source_opts.policy,
        ..PipelineConfig::default()
    });
    let inputs = data.inputs(&observations);
    // A checkpoint dir is exclusive for the duration of the run: two
    // processes interleaving stage snapshots would corrupt both. The
    // lock is PID+heartbeat based, so a SIGKILLed run goes stale and is
    // taken over rather than wedging the directory forever.
    let _lock = match &ckpt {
        Some(opts) => Some(
            DirLock::acquire(&opts.dir)
                .map_err(|e| format!("checkpoint dir {}: {e}", opts.dir.display()))?,
        ),
        None => None,
    };
    let mut metrics = MetricsRegistry::with_trace(metrics_opts.trace);
    let report = if stream {
        stream_analyze(
            &pipeline,
            &observations,
            &inputs,
            &ckpt,
            _lock.as_ref(),
            &mut metrics,
        )?
    } else {
        match &ckpt {
            None => pipeline.run_metered(&inputs, &mut metrics),
            Some(opts) => {
                let mut store = retrodns::core::CheckpointStore::open(&opts.dir)
                    .map_err(|e| format!("{}: {e}", opts.dir.display()))?;
                if !opts.resume {
                    store.clear().map_err(|e| e.to_string())?;
                }
                let report = pipeline.run_resumable_metered(&inputs, &mut store, &mut metrics);
                eprintln!(
                    "checkpoints in {}: resumed {:?}, computed {:?}",
                    opts.dir.display(),
                    store.resumed,
                    store.computed
                );
                // Archive the report beside the stage snapshots: the
                // artifact a resumed run must reproduce byte-for-byte.
                let json = serde_json::to_string_pretty(&report).expect("report serializes");
                let path = opts.dir.join("report.json");
                std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
                report
            }
        }
    };
    if let Some(path) = &metrics_opts.out {
        let snapshot = metrics.snapshot();
        let body = match metrics_opts.format {
            MetricsFormat::Json => snapshot.to_json(),
            MetricsFormat::Prom => snapshot.to_prometheus(),
        };
        std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote metrics to {}", path.display());
    }

    println!("stage timings:");
    print!("{}", report.timings.summary());

    let f = &report.funnel;
    println!("funnel:");
    println!("  domains observed        {}", f.domains_total);
    println!("  transient maps          {}", f.transient_maps);
    println!("  shortlisted             {}", f.shortlisted);
    println!("  dismissed (stale cert)  {}", f.dismissed_stale);
    println!("  inconclusive            {}", f.inconclusive);
    println!(
        "  hijacked                {} ({:?})",
        report.hijacked.len(),
        f.hijacks_by_type
    );
    println!("  targeted                {}", report.targeted.len());
    if !report.degraded.is_empty() {
        println!(
            "  degraded                {} ({:?})",
            report.degraded.len(),
            f.degraded
        );
    }

    let info_map: HashMap<DomainName, DomainInfo> = meta
        .iter()
        .map(|m| {
            (
                m.domain.clone(),
                DomainInfo {
                    sector: m.sector.to_string(),
                    country: Some(m.country),
                    org_name: m.org_name.clone(),
                },
            )
        })
        .collect();
    let info = |d: &DomainName| info_map.get(d).cloned();
    println!("\nhijacked domains:");
    print!("{}", render_table2(&report.hijacked, &info));
    println!("\ntargeted domains:");
    print!("{}", render_table3(&report.targeted, &info));

    if score {
        let truth: TruthFile = load(dir, "truth.json")?;
        let sh = score_detection(&report.hijacked_domains(), &truth.hijacked);
        let st = score_detection(&report.targeted_domains(), &truth.targeted);
        println!("\nscoring vs ground truth:");
        println!(
            "  hijacked: precision {:.2} recall {:.2} f1 {:.2}",
            sh.precision(),
            sh.recall(),
            sh.f1()
        );
        println!(
            "  targeted: precision {:.2} recall {:.2} f1 {:.2}",
            st.precision(),
            st.recall(),
            st.f1()
        );
    }
    if !report.degraded.is_empty() && !source_opts.allow_degraded {
        return Err(format!(
            "{} verdict(s) degraded by unavailable corroboration sources \
             (rerun with --allow-degraded to accept them)",
            report.degraded.len()
        ));
    }
    Ok(())
}

/// `analyze --stream`: slice the observations into per-scan-date batches
/// and feed them through an [`IncrementalAnalyzer`] oldest-first,
/// narrating each week's verdict delta. With `--checkpoint-dir` the
/// analyzer checkpoints after every week, and `--resume` picks the
/// stream back up from the last completed week instead of restarting —
/// the final report is byte-identical to the batch run either way.
fn stream_analyze(
    pipeline: &Pipeline,
    observations: &[retrodns::scan::DomainObservation],
    inputs: &AnalystInputs,
    ckpt: &Option<CheckpointOpts>,
    lock: Option<&DirLock>,
    metrics: &mut MetricsRegistry,
) -> Result<retrodns::core::pipeline::Report, String> {
    use std::collections::BTreeMap;

    let mut by_date: BTreeMap<retrodns::types::Day, Vec<retrodns::scan::DomainObservation>> =
        BTreeMap::new();
    for o in observations {
        by_date.entry(o.date).or_default().push(o.clone());
    }
    let store = match ckpt {
        Some(opts) => {
            let mut store = retrodns::core::CheckpointStore::open(&opts.dir)
                .map_err(|e| format!("checkpoint dir {}: {e}", opts.dir.display()))?;
            if !opts.resume {
                store
                    .clear()
                    .map_err(|e| format!("clearing checkpoint dir {}: {e}", opts.dir.display()))?;
            }
            Some(store)
        }
        None => None,
    };
    let resumable = ckpt.as_ref().is_some_and(|o| o.resume);
    let mut analyzer = store
        .as_ref()
        .filter(|_| resumable)
        .and_then(|s| IncrementalAnalyzer::resume(pipeline.config.clone(), s))
        .unwrap_or_else(|| IncrementalAnalyzer::new(pipeline.config.clone()));
    if analyzer.weeks() > 0 {
        eprintln!(
            "resumed from checkpoint: {} weeks already ingested",
            analyzer.weeks()
        );
    }
    let total = by_date.len();
    for (i, (date, batch)) in by_date.into_iter().enumerate() {
        // Weeks a resumed analyzer has already seen are skipped; the
        // per-date slicing is deterministic, so week i is week i again.
        if (i as u32) < analyzer.weeks() {
            continue;
        }
        let delta = analyzer.ingest_week_metered(&batch, inputs, metrics);
        if delta.has_verdict_changes() {
            eprintln!(
                "week {:>3}/{} ({date}): +{} hijacked -{} hijacked, +{} targeted -{} targeted",
                delta.week + 1,
                total,
                delta.hijacked_upserts.len(),
                delta.hijacked_removed.len(),
                delta.targeted_upserts.len(),
                delta.targeted_removed.len()
            );
        }
        if let Some(s) = &store {
            // An unwritable or vanished checkpoint dir mid-stream is an
            // operational fault, not a bug: exit cleanly with the path
            // and week so the operator knows exactly what was lost
            // (everything up to the previous week is still durable).
            analyzer.checkpoint(s).map_err(|e| {
                let dir = &ckpt.as_ref().expect("store implies ckpt").dir;
                format!(
                    "checkpoint write failed at week {} in {}: {e} \
                     (weeks 1..{} remain resumable with --resume)",
                    i + 1,
                    dir.display(),
                    i.max(1)
                )
            })?;
        }
        if let Some(lock) = lock {
            let _ = lock.heartbeat();
        }
    }
    eprintln!("streamed {total} weeks");
    let report = analyzer.report().clone();
    if let Some(opts) = ckpt {
        // Same archive the batch checkpoint path writes: the artifact a
        // resumed stream must reproduce byte-for-byte.
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        let path = opts.dir.join("report.json");
        std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(report)
}

fn info(dir: &Path) -> Result<(), String> {
    let LoadedData { data, meta } = load_data(dir)?;
    println!("data sets in {}:", dir.display());
    println!(
        "  scans.json   {} records over {} dates",
        data.dataset.len(),
        data.dataset.dates().len()
    );
    println!("  certs.json   {} certificates", data.certs.len());
    println!("  pdns.json    {} aggregated tuples", data.pdns.len());
    println!("  crtsh.json   {} CT records", data.crtsh.len());
    println!(
        "  dnssec.json  {}",
        match &data.dnssec {
            Some(a) => format!("{} domains", a.len()),
            None => "absent".to_string(),
        }
    );
    println!("  meta.json    {} domain descriptions", meta.len());
    Ok(())
}

fn usage() -> &'static str {
    "usage:\n  retrodns simulate --out DIR [--seed N] [--domains N]\n  retrodns analyze --data DIR [--dnssec-signal] [--score] [--stream] [--checkpoint-dir DIR [--resume]]\n                   [--metrics-out PATH [--metrics-format json|prom]] [--trace]\n                   [--source-deadline-ms N] [--source-retries N] [--allow-degraded]\n  retrodns info --data DIR"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let mut out: Option<PathBuf> = None;
    let mut data: Option<PathBuf> = None;
    let mut seed: u64 = 0xD05_11EC7;
    let mut domains: usize = 20_000;
    let mut dnssec_signal = false;
    let mut score = false;
    let mut stream = false;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut metrics_format = MetricsFormat::Json;
    let mut trace = false;
    let mut source_policy = SourcePolicy::default();
    let mut allow_degraded = false;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().map(PathBuf::from),
            "--data" => data = it.next().map(PathBuf::from),
            "--checkpoint-dir" => checkpoint_dir = it.next().map(PathBuf::from),
            "--resume" => resume = true,
            "--metrics-out" => metrics_out = it.next().map(PathBuf::from),
            "--metrics-format" => {
                metrics_format = match it.next().map(String::as_str) {
                    Some("json") => MetricsFormat::Json,
                    Some("prom") => MetricsFormat::Prom,
                    _ => {
                        eprintln!("--metrics-format expects json or prom");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace" => trace = true,
            "--seed" => {
                seed = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--seed expects an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--domains" => {
                domains = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--domains expects an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dnssec-signal" => dnssec_signal = true,
            "--score" => score = true,
            "--stream" => stream = true,
            "--source-deadline-ms" => {
                source_policy.deadline_ms = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--source-deadline-ms expects an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--source-retries" => {
                source_policy.retries = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--source-retries expects an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--allow-degraded" => allow_degraded = true,
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match cmd.as_str() {
        "simulate" => match out {
            Some(dir) => simulate(&dir, seed, domains),
            None => Err("simulate requires --out DIR".into()),
        },
        "analyze" => match data {
            Some(dir) => {
                if resume && checkpoint_dir.is_none() {
                    Err("--resume requires --checkpoint-dir DIR".into())
                } else {
                    let ckpt = checkpoint_dir.map(|dir| CheckpointOpts { dir, resume });
                    let metrics_opts = MetricsOpts {
                        out: metrics_out,
                        format: metrics_format,
                        trace,
                    };
                    let source_opts = SourceOpts {
                        policy: source_policy,
                        allow_degraded,
                    };
                    analyze(
                        &dir,
                        dnssec_signal,
                        score,
                        stream,
                        ckpt,
                        metrics_opts,
                        source_opts,
                    )
                }
            }
            None => Err("analyze requires --data DIR".into()),
        },
        "info" => match data {
            Some(dir) => info(&dir),
            None => Err("info requires --data DIR".into()),
        },
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
