//! Offline stand-in for `serde_json`: JSON text over the vendored `serde`
//! value tree. Struct fields serialize in declaration order and map entries
//! are key-sorted, so output is deterministic byte-for-byte.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

pub use serde::{Number, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(serde::json::to_string(&value.to_value()))
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(serde::json::to_string_pretty(&value.to_value()))
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = serde::json::from_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}
