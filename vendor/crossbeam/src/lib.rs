//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope` (stable since 1.63). Mirrors the `crossbeam::scope`
//! API shape the workspace uses: the closure receives a `&Scope`, spawned
//! closures receive a `&Scope` argument, and `scope` returns a
//! `thread::Result` capturing child panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// Propagated-panic result, as in `crossbeam::thread`.
pub type ScopeResult<R> = std::thread::Result<R>;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}
