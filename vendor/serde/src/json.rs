//! JSON text rendering and parsing for the [`Value`](crate::Value) tree.
//! Lives here (rather than in the vendored `serde_json`) so map-key
//! stringification in the collection impls can reuse it.

use crate::{Error, Number, Value};

pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out, None, 0);
    out
}

pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out, Some(2), 0);
    out
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Rust's shortest round-trip formatting; force a trailing `.0`
            // so the text reparses as a float, preserving the variant.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::custom("lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                        );
                    }
                    _ => return Err(Error::custom(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so it's valid).
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..end]).expect("valid utf8 input"));
                *pos = end;
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, Error> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| Error::custom("truncated \\u escape"))?;
    let text = std::str::from_utf8(chunk).map_err(|_| Error::custom("bad \\u escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| Error::custom("bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::custom(format!("bad number {text:?}")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<i64>()
            .map(|i| Value::Num(Number::I(-i)))
            .map_err(|_| Error::custom(format!("bad number {text:?}")))
    } else {
        text.parse::<u64>()
            .map(|u| Value::Num(Number::U(u)))
            .map_err(|_| Error::custom(format!("bad number {text:?}")))
    }
}
