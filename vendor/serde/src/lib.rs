//! Offline stand-in for `serde` with the same surface the workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace patches `serde`/`serde_derive`/`serde_json` to these local
//! crates. The model is a value tree: `Serialize` lowers a type to a
//! [`Value`], `Deserialize` lifts it back, and `serde_json` (also vendored)
//! renders/parses the tree as JSON text. Struct fields keep declaration
//! order, so serialized output is deterministic; hash-map entries are sorted
//! by key for the same reason.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub mod json;

/// A JSON-shaped value tree. Objects preserve insertion order so that
/// derived struct serialization is byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Numeric payload. The three variants keep u64/i64 precision intact
/// instead of routing everything through f64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    pub fn context(key: &str, inner: Error) -> Error {
        Error(format!("{key}: {}", inner.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower a value to the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift a value back from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is missing from the serialized object.
    /// `Option<T>` overrides this to yield `None`; everything else errors.
    fn absent() -> Result<Self, Error> {
        Err(Error::custom("missing field"))
    }
}

/// Mirror of `serde::de` so `serde::de::DeserializeOwned` bounds resolve.
pub mod de {
    pub use crate::Error;

    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Derive-macro helper: look up `key` in an object's entries; fall back to
/// [`Deserialize::absent`] when the key is not present.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::context(key, e)),
        None => T::absent(),
    }
}

/// Like [`__field`], but a missing key yields `T::default()` — the
/// backing of the `#[serde(default)]` field attribute.
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::context(key, e)),
        None => Ok(T::default()),
    }
}

/// Derive-macro backing of the `#[serde(skip_serializing_if = ...)]`
/// field attribute. The offline shim ignores the attribute's path
/// argument and always compares against `Default`: the field is omitted
/// from the serialized object when it equals `T::default()`, and
/// `default` semantics apply when the key is absent on read.
pub fn __is_default<T: Default + PartialEq>(v: &T) -> bool {
    *v == T::default()
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Num(n) => *n,
                    _ => return Err(Error::expected("unsigned integer", v)),
                };
                let u = match n {
                    Number::U(u) => u,
                    Number::I(i) if i >= 0 => i as u64,
                    Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(Error::custom("number out of unsigned range")),
                };
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Num(n) => *n,
                    _ => return Err(Error::expected("integer", v)),
                };
                let i = match n {
                    Number::I(i) => i,
                    Number::U(u) => i64::try_from(u).map_err(|_| Error::custom("integer out of range"))?,
                    Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(Error::custom("number out of signed range")),
                };
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(Number::F(f)) => Ok(*f as $t),
                    Value::Num(Number::U(u)) => Ok(*u as $t),
                    Value::Num(Number::I(i)) => Ok(*i as $t),
                    _ => Err(Error::expected("float", v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(std::sync::Arc::from)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(std::sync::Arc::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(a) if a.len() == LEN => Ok(($($t::from_value(&a[$idx])?,)+)),
                    Value::Array(a) => Err(Error::custom(format!(
                        "expected {LEN}-tuple, got array of {}", a.len()
                    ))),
                    _ => Err(Error::expected("tuple array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ---------------------------------------------------------------------------
// Collections. JSON objects require string keys, so map keys that are not
// already strings are rendered as compact JSON text (numbers print bare,
// tuples as JSON arrays) and parsed back the same way.
// ---------------------------------------------------------------------------

fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        other => json::to_string(&other),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    let parsed = json::from_str(key).map_err(|_| Error::custom("unparseable map key"))?;
    K::from_value(&parsed).map_err(|e| Error::context("map key", e))
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_to_string(k), v.to_value()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(out)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::expected("object", v)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::expected("object", v)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sort serialized elements for deterministic output.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| json::to_string(a).cmp(&json::to_string(b)));
        Value::Array(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
