//! Offline stand-in for `rand` with the surface the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}`, and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64 — deterministic
//! per seed, statistically solid for simulation workloads, and stable
//! across platforms (no OS entropy, which the offline sandbox lacks anyway).

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    fn gen_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64. Passes BigCrush on its own and is the canonical seeder
    /// for larger generators; plenty for deterministic simulation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by `Rng::gen`, as with rand's `Standard` distribution.
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges accepted by `Rng::gen_range`. Generic over the output type (as
/// in rand's `SampleRange<T>`) so untyped integer literals in range
/// expressions adopt the type expected at the call site.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a range, as in rand's
/// `SampleUniform`. The blanket `SampleRange` impls below are generic over
/// this trait — a *single* impl per range shape, exactly like real rand —
/// which is what lets type inference flow through expressions such as
/// `start + rng.gen_range(1..400)` (per-type impls would leave the
/// literal ambiguous and fall back to `i32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`, or `[low, high]` when
    /// `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span =
                    (high as i128 - low as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                low + (high - low) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(start, end, true, rng)
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
