//! Offline stand-in for `serde_derive`. Parses the item's token stream by
//! hand (no `syn`/`quote` available offline) and emits `impl` blocks for the
//! value-tree `Serialize`/`Deserialize` traits in the vendored `serde`.
//!
//! Supported shapes — exactly what the workspace uses:
//! - named structs, tuple structs (newtype + n-ary), unit structs
//! - enums with unit / tuple / struct variants (externally tagged, the
//!   serde default: `"Variant"`, `{"Variant": payload}`)
//! - a single list of simple generic params (`TimeSeries<T>`)
//! - container attrs `#[serde(from = "T", into = "T")]`
//! - field attrs `#[serde(skip)]` (field omitted on write, `Default` on read)
//!   and `#[serde(default)]` (`Default` when the field is absent on read)
//! - field attr `#[serde(skip_serializing_if = "...")]` on *named structs*
//!   only, with simplified semantics: the path argument is ignored and the
//!   field is omitted when it equals `Default::default()` (see
//!   `serde::__is_default`); implies `default` on read

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
    skip_if_default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut from_ty = None;
    let mut into_ty = None;
    while let Some(attr) = take_attr(&toks, &mut i) {
        for (key, value) in attr {
            match key.as_str() {
                "from" => from_ty = Some(value),
                "into" => into_ty = Some(value),
                _ => {}
            }
        }
    }
    skip_visibility(&toks, &mut i);

    let item_kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;

    let mut generics = Vec::new();
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut at_param = true;
        while depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param = true,
                TokenTree::Punct(p) if p.as_char() == ':' => at_param = false,
                TokenTree::Ident(id) if depth == 1 && at_param => {
                    generics.push(id.to_string());
                    at_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("derive supports struct/enum only, got {other}"),
    };

    Input {
        name,
        generics,
        kind,
        from_ty,
        into_ty,
    }
}

/// If `toks[*i]` starts an attribute (`#[...]`), consume it and return the
/// `key = "value"` / bare-flag pairs found inside any `serde(...)` group.
fn take_attr(toks: &[TokenTree], i: &mut usize) -> Option<Vec<(String, String)>> {
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return None,
    }
    let group = match toks.get(*i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        _ => return None,
    };
    *i += 2;

    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return Some(Vec::new());
    }
    let args = match inner.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Some(Vec::new()),
    };

    let mut pairs = Vec::new();
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let TokenTree::Ident(id) = &args[j] {
            let key = id.to_string();
            if matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                    pairs.push((key, strip_str_literal(&lit.to_string())));
                    j += 3;
                    continue;
                }
            }
            pairs.push((key, String::new()));
        }
        j += 1;
    }
    Some(pairs)
}

fn strip_str_literal(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip = false;
        let mut default = false;
        let mut skip_if_default = false;
        while let Some(attr) = take_attr(&toks, &mut i) {
            if attr.iter().any(|(k, _)| k == "skip") {
                skip = true;
            }
            if attr.iter().any(|(k, _)| k == "default") {
                default = true;
            }
            if attr.iter().any(|(k, _)| k == "skip_serializing_if") {
                // Simplified shim semantics: omit when `Default`, and a
                // field that can be omitted must default on read.
                skip_if_default = true;
                default = true;
            }
        }
        skip_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        // Skip `: Type` — commas inside angle brackets are not separators.
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected ':' after field {name}"
        );
        i += 1;
        let mut angle_depth = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
            skip_if_default,
        });
    }
    fields
}

fn count_top_level_segments(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0usize;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_segment = false,
            _ => {
                if !in_segment {
                    count += 1;
                    in_segment = true;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while take_attr(&toks, &mut i).is_some() {}
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_segments(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let params: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", input.name, input.generics.join(", ")),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let (params, ty) = impl_header(input, "serde::Serialize");
    let body = if let Some(into_ty) = &input.into_ty {
        format!(
            "let __proxy: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &input.kind {
            Kind::UnitStruct => "serde::Value::Null".to_string(),
            Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", items.join(", "))
            }
            Kind::NamedStruct(fields) => {
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.skip) {
                    let push = format!(
                        "__fields.push((::std::string::String::from(\"{0}\"), serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    );
                    if f.skip_if_default {
                        pushes.push_str(&format!(
                            "if !serde::__is_default(&self.{0}) {{ {push} }}\n",
                            f.name
                        ));
                    } else {
                        pushes.push_str(&push);
                    }
                }
                format!(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n\
                     {pushes}serde::Value::Object(__fields)"
                )
            }
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let name = &input.name;
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "{name}::{vname} => serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                        )),
                        VariantKind::Tuple(1) => arms.push_str(&format!(
                            "{name}::{vname}(__f0) => serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), serde::Serialize::to_value(__f0))]),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {} }} => serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), serde::Value::Object(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (params, ty) = impl_header(input, "serde::Deserialize");
    let name = &input.name;
    let body = if let Some(from_ty) = &input.from_ty {
        format!(
            "let __proxy: {from_ty} = serde::Deserialize::from_value(__v)?;\n\
             ::std::result::Result::Ok(::core::convert::From::from(__proxy))"
        )
    } else {
        match &input.kind {
            Kind::UnitStruct => format!(
                "match __v {{\n\
                     serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     __other => ::std::result::Result::Err(serde::Error::expected(\"null for {name}\", __other)),\n\
                 }}"
            ),
            Kind::TupleStruct(1) => format!(
                "::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))"
            ),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                format!(
                    "match __v {{\n\
                         serde::Value::Array(__a) if __a.len() == {n} => ::std::result::Result::Ok({name}({})),\n\
                         __other => ::std::result::Result::Err(serde::Error::expected(\"{n}-element array for {name}\", __other)),\n\
                     }}",
                    items.join(", ")
                )
            }
            Kind::NamedStruct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::core::default::Default::default()", f.name)
                        } else if f.default {
                            format!("{0}: serde::__field_or_default(__o, \"{0}\")?", f.name)
                        } else {
                            format!("{0}: serde::__field(__o, \"{0}\")?", f.name)
                        }
                    })
                    .collect();
                format!(
                    "match __v {{\n\
                         serde::Value::Object(__o) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                         __other => ::std::result::Result::Err(serde::Error::expected(\"object for {name}\", __other)),\n\
                     }}",
                    inits.join(", ")
                )
            }
            Kind::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(serde::Deserialize::from_value(_serde_payload)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            payload_arms.push_str(&format!(
                                "\"{vname}\" => match _serde_payload {{\n\
                                     serde::Value::Array(__a) if __a.len() == {n} => ::std::result::Result::Ok({name}::{vname}({})),\n\
                                     __other => ::std::result::Result::Err(serde::Error::expected(\"{n}-element array for {name}::{vname}\", __other)),\n\
                                 }},\n",
                                items.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: ::core::default::Default::default()", f.name)
                                    } else if f.default {
                                        format!("{0}: serde::__field_or_default(__io, \"{0}\")?", f.name)
                                    } else {
                                        format!("{0}: serde::__field(__io, \"{0}\")?", f.name)
                                    }
                                })
                                .collect();
                            payload_arms.push_str(&format!(
                                "\"{vname}\" => match _serde_payload {{\n\
                                     serde::Value::Object(__io) => ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n\
                                     __other => ::std::result::Result::Err(serde::Error::expected(\"object for {name}::{vname}\", __other)),\n\
                                 }},\n",
                                inits.join(", ")
                            ));
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                         serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\
                             __other => ::std::result::Result::Err(serde::Error::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                         }},\n\
                         serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                             let (__tag, _serde_payload) = &__o[0];\n\
                             match __tag.as_str() {{\n\
                                 {payload_arms}\
                                 __other => ::std::result::Result::Err(serde::Error::custom(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                             }}\n\
                         }}\n\
                         __other => ::std::result::Result::Err(serde::Error::expected(\"{name} variant\", __other)),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
