//! Offline stand-in for `proptest` covering the workspace's usage:
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {...} }`,
//! `prop_assert!`/`prop_assert_eq!`, integer-range and regex-string
//! strategies, `any::<T>()`, `prop::collection::vec`, tuple strategies, and
//! `prop_map`. Cases are generated from a seed derived from the test name,
//! so failures reproduce deterministically; there is no shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator for test-case production.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from a stable string (the test name).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Per-block configuration; `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` — arbitrary value of a primitive type.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// A `&str` strategy is a regex-ish pattern: literal chars, `\x` escapes,
// `[a-z0-9_]` classes, and `{n}`/`{m,n}` quantifiers.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class, an escaped char, or a literal.
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                ranges
            }
            '\\' => {
                i += 2;
                vec![(chars[i - 1], chars[i - 1])]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("quantifier"),
                    b.trim().parse::<usize>().expect("quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        let total: u64 = class
            .iter()
            .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
            .sum();
        for _ in 0..count {
            let mut pick = rng.below(total);
            for (a, b) in &class {
                let size = (*b as u64) - (*a as u64) + 1;
                if pick < size {
                    out.push(char::from_u32(*a as u32 + pick as u32).expect("class char"));
                    break;
                }
                pick -= size;
            }
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// `prop::collection::vec(...)` paths.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__message) = __result {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __message
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}
