//! Offline stand-in for `criterion` with the macro/builder surface the
//! workspace benches use. `cargo bench` (which passes `--bench` to the
//! harness) runs calibrated timed samples and prints mean per-iteration
//! time plus throughput; any other invocation (e.g. `cargo test --benches`)
//! runs each benchmark once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 100,
            bench_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.bench_mode, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(
            &full,
            samples,
            self.criterion.bench_mode,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    name: &str,
    samples: usize,
    bench_mode: bool,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    if !bench_mode {
        // Smoke-test mode: one iteration, no timing report.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~5 ms, then collect `samples` samples (bounded for the
    // single-CPU CI box).
    let mut iters: u64 = 1;
    let mut elapsed;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        elapsed = b.elapsed;
        if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let samples = samples.clamp(2, 100);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    let budget = Duration::from_secs(3);
    let run_start = Instant::now();
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        if run_start.elapsed() > budget {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let mut line = format!(
        "{name:<40} time: [{} median, {} mean, {} samples x {iters} iters]",
        format_time(median),
        format_time(mean),
        per_iter.len()
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        line.push_str(&format!(
            " thrpt: {:.3e} {unit}",
            count as f64 / median
        ));
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
